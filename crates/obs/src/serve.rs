//! Wire schema for the `bga serve` query protocol (`bga-serve-v1`).
//!
//! The server speaks newline-delimited JSON over TCP: one request object
//! per line in, one response object per line out, in order. This module
//! owns both sides of the codec — [`ServeRequest`] / [`ServeResponse`]
//! round-trip through the dependency-free [`crate::json`] machinery the
//! trace layer already uses — so the server, the CLI client and the
//! concurrency tests all share one parser.
//!
//! Requests:
//!
//! ```json
//! {"op":"query","kind":"distance","root":0,"target":9}
//! {"op":"query","kind":"path","root":0,"target":9,"variant":"branch-based"}
//! {"op":"query","kind":"component","vertex":3}
//! {"op":"query","kind":"core","vertex":3,"timeout_ms":50}
//! {"op":"query","kind":"bc-rank","vertex":3}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses carry `"status"` — `"ok"`, `"partial"` (the query's deadline
//! expired and the payload reflects only the completed phases) or
//! `"error"` — plus the query-kind-specific payload, a `"cached"` flag
//! and the server-side service time in microseconds.

use crate::json::{num, object, Json};

/// Schema identifier for the serve protocol.
pub const SERVE_SCHEMA: &str = "bga-serve-v1";

/// What a query asks of the loaded graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryKind {
    /// BFS hop distance from `root` to `target`.
    Distance {
        /// Traversal root.
        root: u32,
        /// Vertex whose distance is reported.
        target: u32,
    },
    /// One shortest (fewest-hop) path from `root` to `target`.
    Path {
        /// Traversal root.
        root: u32,
        /// Path endpoint.
        target: u32,
    },
    /// Connected-component label of `vertex`.
    Component {
        /// Vertex whose component id is reported.
        vertex: u32,
    },
    /// Core number of `vertex` from the k-core decomposition.
    Core {
        /// Vertex whose core number is reported.
        vertex: u32,
    },
    /// Betweenness-centrality rank (0 = most central) and score of
    /// `vertex`.
    BcRank {
        /// Vertex whose rank is reported.
        vertex: u32,
    },
}

impl QueryKind {
    /// Wire name of this query kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            QueryKind::Distance { .. } => "distance",
            QueryKind::Path { .. } => "path",
            QueryKind::Component { .. } => "component",
            QueryKind::Core { .. } => "core",
            QueryKind::BcRank { .. } => "bc-rank",
        }
    }
}

/// One request line on a serve connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeRequest {
    /// Run (or serve from cache) a graph query.
    Query {
        /// What to compute.
        kind: QueryKind,
        /// Relaxation discipline, `"branch-avoiding"` (default) or
        /// `"branch-based"`.
        variant: Option<String>,
        /// Per-query deadline; an over-budget traversal returns a
        /// `"partial"` response instead of blocking the connection.
        timeout_ms: Option<u64>,
    },
    /// Report the server's counters.
    Stats,
    /// Drain and stop the server.
    Shutdown,
}

impl ServeRequest {
    /// Serializes the request as one compact JSON line (no newline).
    pub fn to_json_line(&self) -> String {
        match self {
            ServeRequest::Query {
                kind,
                variant,
                timeout_ms,
            } => {
                let mut pairs = vec![
                    ("op", Json::String("query".to_string())),
                    ("kind", Json::String(kind.as_str().to_string())),
                ];
                match *kind {
                    QueryKind::Distance { root, target } | QueryKind::Path { root, target } => {
                        pairs.push(("root", num(u64::from(root))));
                        pairs.push(("target", num(u64::from(target))));
                    }
                    QueryKind::Component { vertex }
                    | QueryKind::Core { vertex }
                    | QueryKind::BcRank { vertex } => {
                        pairs.push(("vertex", num(u64::from(vertex))));
                    }
                }
                if let Some(variant) = variant {
                    pairs.push(("variant", Json::String(variant.clone())));
                }
                if let Some(ms) = timeout_ms {
                    pairs.push(("timeout_ms", num(*ms)));
                }
                object(pairs).to_string()
            }
            ServeRequest::Stats => {
                object(vec![("op", Json::String("stats".to_string()))]).to_string()
            }
            ServeRequest::Shutdown => {
                object(vec![("op", Json::String("shutdown".to_string()))]).to_string()
            }
        }
    }

    /// Parses one request line.
    pub fn parse_line(line: &str) -> Result<ServeRequest, String> {
        let value = Json::parse(line.trim())?;
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing \"op\"")?;
        match op {
            "stats" => Ok(ServeRequest::Stats),
            "shutdown" => Ok(ServeRequest::Shutdown),
            "query" => {
                let kind_name = value
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("query missing \"kind\"")?;
                let vertex_field = |key: &str| -> Result<u32, String> {
                    value
                        .get(key)
                        .and_then(Json::as_u64)
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| format!("query missing or invalid {key:?}"))
                };
                let kind = match kind_name {
                    "distance" => QueryKind::Distance {
                        root: vertex_field("root")?,
                        target: vertex_field("target")?,
                    },
                    "path" => QueryKind::Path {
                        root: vertex_field("root")?,
                        target: vertex_field("target")?,
                    },
                    "component" => QueryKind::Component {
                        vertex: vertex_field("vertex")?,
                    },
                    "core" => QueryKind::Core {
                        vertex: vertex_field("vertex")?,
                    },
                    "bc-rank" => QueryKind::BcRank {
                        vertex: vertex_field("vertex")?,
                    },
                    other => return Err(format!("unknown query kind {other:?}")),
                };
                let variant = value
                    .get("variant")
                    .and_then(Json::as_str)
                    .map(str::to_string);
                let timeout_ms = value.get("timeout_ms").and_then(Json::as_u64);
                Ok(ServeRequest::Query {
                    kind,
                    variant,
                    timeout_ms,
                })
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// Completion status of a served query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// The query ran (or was served from cache) to completion.
    Ok,
    /// The query's deadline expired; the payload reflects only the phases
    /// that completed (distances behind the cut are final, everything
    /// beyond reports as unreached).
    Partial,
}

impl QueryStatus {
    /// Wire name of this status.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryStatus::Ok => "ok",
            QueryStatus::Partial => "partial",
        }
    }
}

/// Query-kind-specific response payload.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryPayload {
    /// Hop distance (`None` = unreached).
    Distance(Option<u32>),
    /// Shortest path root→target inclusive (`None` = unreached).
    Path(Option<Vec<u32>>),
    /// Component label.
    Component(u32),
    /// Core number.
    Core(u32),
    /// Betweenness rank (0 = most central) and the raw score.
    BcRank {
        /// Position in the descending score order.
        rank: u32,
        /// The vertex's betweenness score.
        score: f64,
    },
}

/// One response line on a serve connection.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeResponse {
    /// A served query's result.
    Query {
        /// Completion status.
        status: QueryStatus,
        /// The answer.
        payload: QueryPayload,
        /// Whether the backing traversal was served from the result cache.
        cached: bool,
        /// Server-side service time in microseconds.
        micros: u64,
    },
    /// The stats counters.
    Stats(ServeStats),
    /// Acknowledges a shutdown request; the server drains and exits.
    ShuttingDown,
    /// A malformed or unanswerable request. The connection stays usable.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl ServeResponse {
    /// Serializes the response as one compact JSON line (no newline).
    pub fn to_json_line(&self) -> String {
        match self {
            ServeResponse::Query {
                status,
                payload,
                cached,
                micros,
            } => {
                let mut pairs = vec![
                    ("schema", Json::String(SERVE_SCHEMA.to_string())),
                    ("status", Json::String(status.as_str().to_string())),
                ];
                match payload {
                    QueryPayload::Distance(d) => {
                        pairs.push(("kind", Json::String("distance".to_string())));
                        pairs.push(("distance", d.map_or(Json::Null, |d| num(u64::from(d)))));
                    }
                    QueryPayload::Path(p) => {
                        pairs.push(("kind", Json::String("path".to_string())));
                        pairs.push((
                            "path",
                            p.as_ref().map_or(Json::Null, |p| {
                                Json::Array(p.iter().map(|&v| num(u64::from(v))).collect())
                            }),
                        ));
                    }
                    QueryPayload::Component(c) => {
                        pairs.push(("kind", Json::String("component".to_string())));
                        pairs.push(("component", num(u64::from(*c))));
                    }
                    QueryPayload::Core(c) => {
                        pairs.push(("kind", Json::String("core".to_string())));
                        pairs.push(("core", num(u64::from(*c))));
                    }
                    QueryPayload::BcRank { rank, score } => {
                        pairs.push(("kind", Json::String("bc-rank".to_string())));
                        pairs.push(("rank", num(u64::from(*rank))));
                        pairs.push(("score", Json::Number(*score)));
                    }
                }
                pairs.push(("cached", Json::Bool(*cached)));
                pairs.push(("micros", num(*micros)));
                object(pairs).to_string()
            }
            ServeResponse::Stats(stats) => stats.to_json_line(),
            ServeResponse::ShuttingDown => object(vec![
                ("schema", Json::String(SERVE_SCHEMA.to_string())),
                ("status", Json::String("shutting-down".to_string())),
            ])
            .to_string(),
            ServeResponse::Error { message } => object(vec![
                ("schema", Json::String(SERVE_SCHEMA.to_string())),
                ("status", Json::String("error".to_string())),
                ("error", Json::String(message.clone())),
            ])
            .to_string(),
        }
    }

    /// Parses one response line (the client / test side).
    pub fn parse_line(line: &str) -> Result<ServeResponse, String> {
        let value = Json::parse(line.trim())?;
        let status = value
            .get("status")
            .and_then(Json::as_str)
            .ok_or("missing \"status\"")?;
        match status {
            "shutting-down" => return Ok(ServeResponse::ShuttingDown),
            "error" => {
                let message = value
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string();
                return Ok(ServeResponse::Error { message });
            }
            "stats" => return ServeStats::from_json(&value).map(ServeResponse::Stats),
            _ => {}
        }
        let status = match status {
            "ok" => QueryStatus::Ok,
            "partial" => QueryStatus::Partial,
            other => return Err(format!("unknown status {other:?}")),
        };
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing \"kind\"")?;
        let u32_field = |key: &str| -> Result<u32, String> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| format!("missing or invalid {key:?}"))
        };
        let payload = match kind {
            "distance" => QueryPayload::Distance(match value.get("distance") {
                Some(Json::Null) | None => None,
                Some(d) => Some(
                    d.as_u64()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or("invalid \"distance\"")?,
                ),
            }),
            "path" => QueryPayload::Path(match value.get("path") {
                Some(Json::Null) | None => None,
                Some(p) => Some(
                    p.as_array()
                        .ok_or("invalid \"path\"")?
                        .iter()
                        .map(|v| {
                            v.as_u64()
                                .and_then(|v| u32::try_from(v).ok())
                                .ok_or("invalid path vertex")
                        })
                        .collect::<Result<Vec<u32>, _>>()?,
                ),
            }),
            "component" => QueryPayload::Component(u32_field("component")?),
            "core" => QueryPayload::Core(u32_field("core")?),
            "bc-rank" => QueryPayload::BcRank {
                rank: u32_field("rank")?,
                score: value
                    .get("score")
                    .and_then(Json::as_f64)
                    .ok_or("missing \"score\"")?,
            },
            other => return Err(format!("unknown kind {other:?}")),
        };
        let cached = value
            .get("cached")
            .and_then(Json::as_bool)
            .ok_or("missing \"cached\"")?;
        let micros = value
            .get("micros")
            .and_then(Json::as_u64)
            .ok_or("missing \"micros\"")?;
        Ok(ServeResponse::Query {
            status,
            payload,
            cached,
            micros,
        })
    }
}

/// The server's observable counters, reported by the `stats` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Query requests accepted (well-formed `query` ops).
    pub queries: u64,
    /// Queries answered out of the result cache without recomputation.
    pub cache_hits: u64,
    /// Queries that ran a traversal (and populated the cache).
    pub cache_misses: u64,
    /// Queries whose deadline expired, answered with a partial payload.
    pub partials: u64,
    /// Malformed or unanswerable request lines.
    pub errors: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Traversal trees currently resident in the result cache.
    pub cache_entries: u64,
    /// Vertex count of the loaded snapshot.
    pub graph_vertices: u64,
    /// Edge-slot count of the loaded snapshot.
    pub graph_edges: u64,
    /// Snapshot epoch — bumps if the server ever reloads, invalidating
    /// every cached tree keyed under an older epoch.
    pub epoch: u64,
    /// Worker threads each query traversal uses.
    pub threads: u64,
    /// Cumulative per-query service time in microseconds (cache hits and
    /// misses alike) — `query_micros / queries` is the mean query cost.
    pub query_micros: u64,
    /// Worker-pool batches fanned out across compute queries.
    pub pool_batches: u64,
    /// Times a pool worker parked on the condvar waiting for work.
    pub pool_parks: u64,
    /// Times a parked pool worker was woken.
    pub pool_wakes: u64,
    /// Worst per-batch claim imbalance observed, in permille
    /// (1000 = perfectly even; `participants * 1000` = one thread
    /// claimed every chunk). Integer so the stats line stays `Eq`.
    pub pool_max_imbalance_permille: u64,
}

impl ServeStats {
    /// Serializes the counters as one compact JSON line (no newline).
    pub fn to_json_line(&self) -> String {
        object(vec![
            ("schema", Json::String(SERVE_SCHEMA.to_string())),
            ("status", Json::String("stats".to_string())),
            ("queries", num(self.queries)),
            ("cache_hits", num(self.cache_hits)),
            ("cache_misses", num(self.cache_misses)),
            ("partials", num(self.partials)),
            ("errors", num(self.errors)),
            ("connections", num(self.connections)),
            ("cache_entries", num(self.cache_entries)),
            ("graph_vertices", num(self.graph_vertices)),
            ("graph_edges", num(self.graph_edges)),
            ("epoch", num(self.epoch)),
            ("threads", num(self.threads)),
            ("query_micros", num(self.query_micros)),
            ("pool_batches", num(self.pool_batches)),
            ("pool_parks", num(self.pool_parks)),
            ("pool_wakes", num(self.pool_wakes)),
            (
                "pool_max_imbalance_permille",
                num(self.pool_max_imbalance_permille),
            ),
        ])
        .to_string()
    }

    /// Extracts the counters from a parsed stats response.
    pub fn from_json(value: &Json) -> Result<ServeStats, String> {
        let field = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("stats missing {key:?}"))
        };
        Ok(ServeStats {
            queries: field("queries")?,
            cache_hits: field("cache_hits")?,
            cache_misses: field("cache_misses")?,
            partials: field("partials")?,
            errors: field("errors")?,
            connections: field("connections")?,
            cache_entries: field("cache_entries")?,
            graph_vertices: field("graph_vertices")?,
            graph_edges: field("graph_edges")?,
            epoch: field("epoch")?,
            threads: field("threads")?,
            query_micros: field("query_micros")?,
            pool_batches: field("pool_batches")?,
            pool_parks: field("pool_parks")?,
            pool_wakes: field("pool_wakes")?,
            pool_max_imbalance_permille: field("pool_max_imbalance_permille")?,
        })
    }

    /// Parses one stats line.
    pub fn parse_line(line: &str) -> Result<ServeStats, String> {
        ServeStats::from_json(&Json::parse(line.trim())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = [
            ServeRequest::Query {
                kind: QueryKind::Distance { root: 0, target: 9 },
                variant: None,
                timeout_ms: None,
            },
            ServeRequest::Query {
                kind: QueryKind::Path { root: 3, target: 4 },
                variant: Some("branch-based".to_string()),
                timeout_ms: Some(50),
            },
            ServeRequest::Query {
                kind: QueryKind::Component { vertex: 7 },
                variant: None,
                timeout_ms: None,
            },
            ServeRequest::Query {
                kind: QueryKind::Core { vertex: 7 },
                variant: None,
                timeout_ms: Some(1),
            },
            ServeRequest::Query {
                kind: QueryKind::BcRank { vertex: 2 },
                variant: Some("branch-avoiding".to_string()),
                timeout_ms: None,
            },
            ServeRequest::Stats,
            ServeRequest::Shutdown,
        ];
        for request in requests {
            let line = request.to_json_line();
            assert_eq!(ServeRequest::parse_line(&line).unwrap(), request, "{line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            ServeResponse::Query {
                status: QueryStatus::Ok,
                payload: QueryPayload::Distance(Some(4)),
                cached: true,
                micros: 12,
            },
            ServeResponse::Query {
                status: QueryStatus::Partial,
                payload: QueryPayload::Distance(None),
                cached: false,
                micros: 900,
            },
            ServeResponse::Query {
                status: QueryStatus::Ok,
                payload: QueryPayload::Path(Some(vec![0, 3, 9])),
                cached: false,
                micros: 55,
            },
            ServeResponse::Query {
                status: QueryStatus::Ok,
                payload: QueryPayload::Path(None),
                cached: false,
                micros: 5,
            },
            ServeResponse::Query {
                status: QueryStatus::Ok,
                payload: QueryPayload::Component(2),
                cached: true,
                micros: 1,
            },
            ServeResponse::Query {
                status: QueryStatus::Ok,
                payload: QueryPayload::Core(3),
                cached: false,
                micros: 77,
            },
            ServeResponse::Query {
                status: QueryStatus::Ok,
                payload: QueryPayload::BcRank {
                    rank: 0,
                    score: 12.5,
                },
                cached: false,
                micros: 400,
            },
            ServeResponse::ShuttingDown,
            ServeResponse::Error {
                message: "unknown op \"frobnicate\"".to_string(),
            },
        ];
        for response in responses {
            let line = response.to_json_line();
            assert_eq!(
                ServeResponse::parse_line(&line).unwrap(),
                response,
                "{line}"
            );
        }
    }

    #[test]
    fn stats_round_trip() {
        let stats = ServeStats {
            queries: 10,
            cache_hits: 4,
            cache_misses: 6,
            partials: 1,
            errors: 2,
            connections: 3,
            cache_entries: 5,
            graph_vertices: 100,
            graph_edges: 400,
            epoch: 1,
            threads: 4,
            query_micros: 12345,
            pool_batches: 7,
            pool_parks: 9,
            pool_wakes: 8,
            pool_max_imbalance_permille: 1750,
        };
        let line = ServeResponse::Stats(stats).to_json_line();
        assert_eq!(ServeStats::parse_line(&line).unwrap(), stats);
        assert_eq!(
            ServeResponse::parse_line(&line).unwrap(),
            ServeResponse::Stats(stats)
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        assert!(ServeRequest::parse_line("not json").is_err());
        assert!(ServeRequest::parse_line("{}").is_err());
        assert!(ServeRequest::parse_line(r#"{"op":"frobnicate"}"#).is_err());
        assert!(ServeRequest::parse_line(r#"{"op":"query"}"#).is_err());
        assert!(ServeRequest::parse_line(r#"{"op":"query","kind":"distance","root":0}"#).is_err());
        assert!(
            ServeRequest::parse_line(r#"{"op":"query","kind":"component","vertex":-1}"#).is_err()
        );
    }
}
