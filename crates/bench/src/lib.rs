//! # bga-bench
//!
//! Experiment harness for the *Branch-Avoiding Graph Algorithms*
//! reproduction. The binaries in `src/bin/` regenerate every table and
//! figure of the paper's evaluation (see DESIGN.md for the per-experiment
//! index); this library holds the plumbing they share: suite construction,
//! paired instrumented runs, and CSV/table printing.
//!
//! All binaries accept the `BGA_SUITE_SCALE` environment variable
//! (`small`, the default, or `full`) and `BGA_SEED` (default 42).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;
pub mod harness;
pub mod report;

pub use harness::{bfs_pair, sv_pair, ExperimentContext};
pub use report::{print_csv_row, print_header, print_section};
