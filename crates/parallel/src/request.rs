//! The unified kernel-invocation API: one request + one config, one
//! `run` per kernel.
//!
//! Historically every parallel kernel grew its own entry-point family
//! along the `{variant, instrumented, traced, cancellable, executor}`
//! axes — 19 `par_bfs_*` functions alone — which made multiplexing over
//! the kernels (the `bga serve` scheduler, the CLI, the benches)
//! combinatorial. This module collapses those axes into data:
//!
//! * [`RunConfig`] — *how* to run: worker count, grain override,
//!   instrumentation, an optional [`TraceSink`] and an optional
//!   [`CancelToken`]. The sink stays a compile-time type parameter
//!   (`TraceSink::ENABLED` is a `const`, deliberately not dyn-compatible)
//!   so a default config compiles to exactly the untraced fast path.
//! * [`KernelRequest`] — *what* to run: kernel, variant and its
//!   kernel-specific arguments (root, delta, source set), an owned value
//!   a server can parse off the wire and hold in a queue.
//! * `run_*` — one typed dispatch per kernel
//!   ([`run_components`], [`run_bfs`], [`run_kcore`],
//!   [`run_betweenness`], [`run_sssp_unit`], [`run_sssp_weighted`]), plus
//!   the dynamic [`run`] that serves a [`KernelRequest`] against any
//!   [`AdjacencySource`] and returns a [`KernelOutput`].
//!
//! The historical `par_*` free functions have been removed; these
//! request functions are the only entry points. [`Variant::Auto`] adds
//! runtime selection on top: the run samples its first phases
//! instrumented and the [`bga_perfmodel::advisor`] picks the discipline
//! for the rest.
//!
//! ```
//! use bga_graph::generators::{grid_2d, MeshStencil};
//! use bga_parallel::request::{run_bfs, BfsStrategy, RunConfig, Variant};
//!
//! let g = grid_2d(16, 16, MeshStencil::VonNeumann);
//! let cfg = RunConfig::new().threads(4);
//! let (run, outcome) = run_bfs(&g, 0, BfsStrategy::Plain(Variant::BranchAvoiding), &cfg);
//! assert!(outcome.is_completed());
//! assert_eq!(run.result.reached_count(), g.num_vertices());
//! ```

use crate::bc::ParBcRun;
use crate::bfs::ParDirBfsRun;
use crate::cancel::{CancelToken, RunOutcome};
use crate::kcore::ParKcoreRun;
use crate::pool::{Execute, PoolConfig};
use crate::sssp::{ParSsspRun, ParWssspRun};
use crate::sv::ParSvRun;
use bga_graph::{AdjacencySource, VertexId, WeightedAdjacencySource};
use bga_kernels::bfs::direction_optimizing::DirectionConfig;
use bga_kernels::cc::ComponentLabels;
use bga_obs::{NoopSink, TraceSink};

/// Which per-edge hooking discipline a kernel runs with — the axis the
/// paper contrasts. One enum for every kernel (the per-kernel aliases
/// `SsspVariant`, `KcoreVariant` and `BcVariant` all name this type).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Data-dependent test guarding a compare-and-swap claim.
    BranchBased,
    /// Unconditional priority write (`fetch_min`/`fetch_sub`) with a
    /// predicated, branch-free claim.
    BranchAvoiding,
    /// Adaptive: sample the first phases branch-based with tallying on,
    /// feed the perf model's variant advisor, and hot-switch to the
    /// predicted-best discipline at the next phase boundary (see
    /// [`crate::auto::AutoSwitch`]). Results are bit-identical to both
    /// static variants — the disciplines share the same monotone atomic
    /// state.
    Auto,
}

impl Variant {
    /// The serialized name trace headers and the CLI use.
    pub fn as_str(self) -> &'static str {
        match self {
            Variant::BranchBased => "branch-based",
            Variant::BranchAvoiding => "branch-avoiding",
            Variant::Auto => "auto",
        }
    }
}

impl std::str::FromStr for Variant {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "branch-based" | "branchy" => Ok(Variant::BranchBased),
            "branch-avoiding" | "avoiding" => Ok(Variant::BranchAvoiding),
            "auto" => Ok(Variant::Auto),
            other => Err(format!(
                "unknown variant '{other}' (expected 'branch-based', 'branch-avoiding' or 'auto')"
            )),
        }
    }
}

/// Which BFS expansion strategy a request runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BfsStrategy {
    /// Strictly top-down expansion in the given hooking discipline.
    Plain(Variant),
    /// Direction-optimizing expansion (branch-avoiding hooking) with the
    /// given switching thresholds.
    DirectionOptimizing(DirectionConfig),
}

impl BfsStrategy {
    /// The serialized strategy name trace headers carry.
    pub fn as_str(&self) -> &'static str {
        match self {
            BfsStrategy::Plain(v) => v.as_str(),
            BfsStrategy::DirectionOptimizing(_) => "direction-optimizing",
        }
    }
}

/// How to run a kernel: the execution axes every `par_*` entry point used
/// to hardcode, folded into one builder.
///
/// The defaults are the fast path: all cores, environment grain, no
/// instrumentation, no trace, no cancellation. A [`TraceSink`] is a type
/// parameter (not a trait object — [`TraceSink::ENABLED`] is a `const`
/// the kernels compile against), so attaching one via [`RunConfig::traced`]
/// rebinds the config's type; everything else is runtime data.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig<'a, S: TraceSink = NoopSink> {
    pub(crate) threads: usize,
    pub(crate) grain: Option<usize>,
    pub(crate) instrumented: bool,
    pub(crate) sink: &'a S,
    pub(crate) cancel: Option<&'a CancelToken>,
}

impl RunConfig<'static, NoopSink> {
    /// The default configuration: every available core, grain from the
    /// environment, plain uninstrumented kernels.
    pub fn new() -> Self {
        RunConfig {
            threads: 0,
            grain: None,
            instrumented: false,
            sink: &NoopSink,
            cancel: None,
        }
    }
}

impl Default for RunConfig<'static, NoopSink> {
    fn default() -> Self {
        RunConfig::new()
    }
}

impl<'a, S: TraceSink> RunConfig<'a, S> {
    /// Worker-thread count; `0` (the default) uses every available core.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the fan-out grain (minimum weight units before a
    /// sweep/level dispatches to the pool) instead of reading
    /// [`crate::pool::GRAIN_ENV_VAR`].
    pub fn grain(mut self, grain: usize) -> Self {
        self.grain = Some(grain);
        self
    }

    /// Tally per-operation counters (loads, stores, branches) into the
    /// run's [`bga_kernels::stats::RunCounters`]. Off by default — the
    /// tally is a `const` seam that compiles out of plain runs.
    pub fn instrumented(mut self, instrumented: bool) -> Self {
        self.instrumented = instrumented;
        self
    }

    /// Attaches a [`TraceSink`] that receives the run's `bga-trace-v1`
    /// event stream; rebinds the config's sink type. A traced run always
    /// tallies (phase counters are real) and monitors the pool.
    pub fn traced<T: TraceSink>(self, sink: &'a T) -> RunConfig<'a, T> {
        RunConfig {
            threads: self.threads,
            grain: self.grain,
            instrumented: self.instrumented,
            sink,
            cancel: self.cancel,
        }
    }

    /// Attaches a [`CancelToken`] checked at every phase boundary; the
    /// run reports how it ended through its [`RunOutcome`].
    pub fn cancel(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The resolved pool configuration this run will use.
    pub(crate) fn pool_config(&self) -> PoolConfig {
        let mut config = PoolConfig::from_env(self.threads);
        if let Some(grain) = self.grain {
            config.grain = grain;
        }
        config
    }

    /// Whether the run needs the monitored driver (trace emission or
    /// cancellation checks); plain and instrumented-only runs take the
    /// unmonitored fast path.
    pub(crate) fn observed(&self) -> bool {
        S::ENABLED || self.cancel.is_some()
    }
}

/// What to run: kernel, variant and kernel-specific arguments. An owned,
/// queueable value — the unit of work `bga serve` parses off the wire —
/// dispatched by [`run`].
#[derive(Clone, Debug, PartialEq)]
pub enum KernelRequest {
    /// Shiloach-Vishkin connected components.
    Components {
        /// Hooking discipline.
        variant: Variant,
    },
    /// Level-synchronous BFS from `root`.
    Bfs {
        /// Traversal root.
        root: VertexId,
        /// Expansion strategy.
        strategy: BfsStrategy,
    },
    /// K-core decomposition by concurrent peeling.
    Kcore {
        /// Peeling discipline.
        variant: Variant,
    },
    /// Brandes betweenness centrality. With `sources: None` this is the
    /// exact halved all-pairs accumulation; with an explicit source set
    /// it is the raw un-halved partial accumulation sampled-source
    /// approximations scale.
    Betweenness {
        /// Forward-phase discipline.
        variant: Variant,
        /// Explicit source subset, or `None` for all vertices.
        sources: Option<Vec<VertexId>>,
    },
    /// Unit-weight SSSP (level-loop degeneration) from `root`.
    SsspUnit {
        /// Traversal source.
        root: VertexId,
        /// Relaxation discipline.
        variant: Variant,
    },
    /// Weighted delta-stepping SSSP from `root` with bucket width
    /// `delta`. Needs a [`WeightedAdjacencySource`]; the unweighted
    /// [`run`] dispatch refuses it with [`RequestError::RequiresWeights`].
    SsspWeighted {
        /// Traversal source.
        root: VertexId,
        /// Bucket width.
        delta: u32,
        /// Relaxation discipline.
        variant: Variant,
    },
}

impl KernelRequest {
    /// The kernel's serialized name (`cc`, `bfs`, `kcore`, `bc`, `sssp`,
    /// `sssp-weighted`) — the same names trace headers carry.
    pub fn kernel_name(&self) -> &'static str {
        match self {
            KernelRequest::Components { .. } => "cc",
            KernelRequest::Bfs { .. } => "bfs",
            KernelRequest::Kcore { .. } => "kcore",
            KernelRequest::Betweenness { .. } => "bc",
            KernelRequest::SsspUnit { .. } => "sssp",
            KernelRequest::SsspWeighted { .. } => "sssp-weighted",
        }
    }
}

/// A finished kernel run, one arm per [`KernelRequest`] arm.
#[derive(Clone, Debug)]
pub enum KernelOutput {
    /// Connected-components run.
    Components(ParSvRun),
    /// BFS run (directions per level; counters when instrumented).
    Bfs(ParDirBfsRun),
    /// K-core run.
    Kcore(ParKcoreRun),
    /// Betweenness run.
    Betweenness(ParBcRun),
    /// Unit-weight SSSP run.
    SsspUnit(ParSsspRun),
    /// Weighted SSSP run.
    SsspWeighted(ParWssspRun),
}

/// Why a [`KernelRequest`] could not be dispatched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// A weighted kernel was requested against an unweighted adjacency
    /// source; use [`run_sssp_weighted`] with a
    /// [`WeightedAdjacencySource`].
    RequiresWeights,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::RequiresWeights => {
                write!(f, "request requires an edge-weighted graph")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// Parallel Shiloach-Vishkin connected components under `config`.
pub fn run_components<G: AdjacencySource, S: TraceSink>(
    graph: &G,
    variant: Variant,
    config: &RunConfig<'_, S>,
) -> (ParSvRun, RunOutcome) {
    crate::sv::run_request(graph, variant, None, config)
}

/// Resumes connected components from partial labels (typically the state
/// an interrupted run returned): sweeps continue lowering the given
/// labels instead of the identity and converge to the same fixpoint.
pub fn run_components_resumed<G: AdjacencySource, S: TraceSink>(
    graph: &G,
    variant: Variant,
    labels: &ComponentLabels,
    config: &RunConfig<'_, S>,
) -> (ParSvRun, RunOutcome) {
    crate::sv::run_request(graph, variant, Some(labels), config)
}

/// [`run_components`] on an explicit executor — the seam the benchmarks
/// and forced-fan-out tests use. Plain kernels (no tally, no trace).
pub fn run_components_on<G: AdjacencySource, E: Execute>(
    graph: &G,
    variant: Variant,
    exec: &E,
    grain: usize,
) -> ParSvRun {
    crate::sv::run_request_on(graph, variant, exec, grain)
}

/// Parallel BFS from `root` under `config`.
pub fn run_bfs<G: AdjacencySource, S: TraceSink>(
    graph: &G,
    root: VertexId,
    strategy: BfsStrategy,
    config: &RunConfig<'_, S>,
) -> (ParDirBfsRun, RunOutcome) {
    crate::bfs::run_request(graph, root, strategy, config)
}

/// [`run_bfs`] on an explicit executor; plain kernels.
pub fn run_bfs_on<G: AdjacencySource, E: Execute>(
    graph: &G,
    root: VertexId,
    strategy: BfsStrategy,
    exec: &E,
    grain: usize,
) -> ParDirBfsRun {
    crate::bfs::run_request_on(graph, root, strategy, exec, grain)
}

/// [`run_bfs_on`] reusing a caller-held
/// [`TraversalState`](crate::engine::TraversalState) allocation: the
/// state is reset in place before the traversal and the distances are
/// snapshotted out, so a long-lived caller (the `bga serve` query loop)
/// answers repeated BFS queries without reallocating the atomic arrays.
/// The state must be sized for `graph`.
pub fn run_bfs_reusing<G: AdjacencySource, E: Execute>(
    graph: &G,
    root: VertexId,
    strategy: BfsStrategy,
    exec: &E,
    grain: usize,
    state: &mut crate::engine::TraversalState,
) -> ParDirBfsRun {
    crate::bfs::run_request_reusing(graph, root, strategy, exec, grain, state)
}

/// Parallel k-core decomposition under `config`.
pub fn run_kcore<G: AdjacencySource, S: TraceSink>(
    graph: &G,
    variant: Variant,
    config: &RunConfig<'_, S>,
) -> (ParKcoreRun, RunOutcome) {
    crate::kcore::run_request(graph, variant, config)
}

/// [`run_kcore`] on an explicit executor; plain kernels.
pub fn run_kcore_on<G: AdjacencySource, E: Execute>(
    graph: &G,
    variant: Variant,
    exec: &E,
    grain: usize,
) -> ParKcoreRun {
    crate::kcore::run_request_on(graph, variant, exec, grain)
}

/// Parallel Brandes betweenness centrality under `config`. With
/// `sources: None` the scores are the exact halved all-pairs
/// accumulation; with an explicit source set they are the raw un-halved
/// partial accumulation (see [`ParBcRun`] for the partial-result
/// semantics under cancellation).
pub fn run_betweenness<G: AdjacencySource, S: TraceSink>(
    graph: &G,
    variant: Variant,
    sources: Option<&[VertexId]>,
    config: &RunConfig<'_, S>,
) -> (ParBcRun, RunOutcome) {
    crate::bc::run_request(graph, variant, sources, config)
}

/// [`run_betweenness`] on an explicit executor; plain kernels.
pub fn run_betweenness_on<G: AdjacencySource, E: Execute>(
    graph: &G,
    variant: Variant,
    sources: Option<&[VertexId]>,
    exec: &E,
    grain: usize,
) -> ParBcRun {
    crate::bc::run_request_on(graph, variant, sources, exec, grain)
}

/// Parallel unit-weight SSSP from `root` under `config`.
pub fn run_sssp_unit<G: AdjacencySource, S: TraceSink>(
    graph: &G,
    root: VertexId,
    variant: Variant,
    config: &RunConfig<'_, S>,
) -> (ParSsspRun, RunOutcome) {
    crate::sssp::run_unit_request(graph, root, variant, config)
}

/// [`run_sssp_unit`] on an explicit executor; plain kernels.
pub fn run_sssp_unit_on<G: AdjacencySource, E: Execute>(
    graph: &G,
    root: VertexId,
    variant: Variant,
    exec: &E,
    grain: usize,
) -> ParSsspRun {
    crate::sssp::run_unit_request_on(graph, root, variant, exec, grain)
}

/// Parallel weighted delta-stepping SSSP from `root` under `config`.
pub fn run_sssp_weighted<W: WeightedAdjacencySource, S: TraceSink>(
    graph: &W,
    root: VertexId,
    delta: u32,
    variant: Variant,
    config: &RunConfig<'_, S>,
) -> (ParWssspRun, RunOutcome) {
    crate::sssp::run_weighted_request(graph, root, delta, variant, None, config)
}

/// Resumes weighted delta-stepping from the partial distances an
/// interrupted run returned; bit-identical to an uninterrupted run.
pub fn run_sssp_weighted_resumed<W: WeightedAdjacencySource, S: TraceSink>(
    graph: &W,
    root: VertexId,
    delta: u32,
    variant: Variant,
    distances: &[u32],
    config: &RunConfig<'_, S>,
) -> (ParWssspRun, RunOutcome) {
    crate::sssp::run_weighted_request(graph, root, delta, variant, Some(distances), config)
}

/// [`run_sssp_weighted`] on an explicit executor; plain kernels.
pub fn run_sssp_weighted_on<W: WeightedAdjacencySource, E: Execute>(
    graph: &W,
    root: VertexId,
    delta: u32,
    variant: Variant,
    exec: &E,
    grain: usize,
) -> ParWssspRun {
    crate::sssp::run_weighted_request_on(graph, root, delta, variant, exec, grain)
}

/// Dispatches a [`KernelRequest`] against an unweighted adjacency source
/// — the single entry the `bga serve` scheduler multiplexes over.
/// Weighted requests need weights the source does not carry and are
/// refused with [`RequestError::RequiresWeights`]; serve them through
/// [`run_sssp_weighted`].
pub fn run<G: AdjacencySource, S: TraceSink>(
    graph: &G,
    request: &KernelRequest,
    config: &RunConfig<'_, S>,
) -> Result<(KernelOutput, RunOutcome), RequestError> {
    Ok(match request {
        KernelRequest::Components { variant } => {
            let (run, outcome) = run_components(graph, *variant, config);
            (KernelOutput::Components(run), outcome)
        }
        KernelRequest::Bfs { root, strategy } => {
            let (run, outcome) = run_bfs(graph, *root, *strategy, config);
            (KernelOutput::Bfs(run), outcome)
        }
        KernelRequest::Kcore { variant } => {
            let (run, outcome) = run_kcore(graph, *variant, config);
            (KernelOutput::Kcore(run), outcome)
        }
        KernelRequest::Betweenness { variant, sources } => {
            let (run, outcome) = run_betweenness(graph, *variant, sources.as_deref(), config);
            (KernelOutput::Betweenness(run), outcome)
        }
        KernelRequest::SsspUnit { root, variant } => {
            let (run, outcome) = run_sssp_unit(graph, *root, *variant, config);
            (KernelOutput::SsspUnit(run), outcome)
        }
        KernelRequest::SsspWeighted { .. } => return Err(RequestError::RequiresWeights),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bga_graph::generators::{barabasi_albert, grid_2d, MeshStencil};

    #[test]
    fn variant_parses_and_serializes() {
        assert_eq!("branch-avoiding".parse(), Ok(Variant::BranchAvoiding));
        assert_eq!("branch-based".parse(), Ok(Variant::BranchBased));
        assert_eq!("auto".parse(), Ok(Variant::Auto));
        assert_eq!(Variant::BranchAvoiding.as_str(), "branch-avoiding");
        assert_eq!(Variant::Auto.as_str(), "auto");
        assert!("sideways".parse::<Variant>().is_err());
    }

    #[test]
    fn dynamic_dispatch_matches_typed_runs() {
        let g = barabasi_albert(400, 3, 11);
        let cfg = RunConfig::new().threads(2);
        for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
            let (typed, _) = run_components(&g, variant, &cfg);
            match run(&g, &KernelRequest::Components { variant }, &cfg).unwrap() {
                (KernelOutput::Components(run), outcome) => {
                    assert!(outcome.is_completed());
                    assert_eq!(run.labels.as_slice(), typed.labels.as_slice());
                }
                other => panic!("wrong output arm: {other:?}"),
            }
        }
        let request = KernelRequest::Bfs {
            root: 0,
            strategy: BfsStrategy::Plain(Variant::BranchAvoiding),
        };
        match run(&g, &request, &cfg).unwrap() {
            (KernelOutput::Bfs(run), outcome) => {
                assert!(outcome.is_completed());
                assert_eq!(run.result.reached_count(), g.num_vertices());
            }
            other => panic!("wrong output arm: {other:?}"),
        }
    }

    #[test]
    fn weighted_requests_are_refused_on_unweighted_sources() {
        let g = grid_2d(4, 4, MeshStencil::VonNeumann);
        let request = KernelRequest::SsspWeighted {
            root: 0,
            delta: 4,
            variant: Variant::BranchAvoiding,
        };
        assert_eq!(
            run(&g, &request, &RunConfig::new()).unwrap_err(),
            RequestError::RequiresWeights
        );
    }

    #[test]
    fn grain_override_forces_fan_out_without_env() {
        let g = grid_2d(12, 12, MeshStencil::VonNeumann);
        let cfg = RunConfig::new().threads(2).grain(1);
        let (run, outcome) = run_bfs(&g, 0, BfsStrategy::Plain(Variant::BranchAvoiding), &cfg);
        assert!(outcome.is_completed());
        assert_eq!(run.result.reached_count(), g.num_vertices());
    }
}
