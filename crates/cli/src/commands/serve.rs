//! `bga serve`: run the long-lived query server over one graph.
//!
//! Loads the graph once into an immutable snapshot, binds a TCP
//! listener and answers `bga-serve-v1` queries until a `shutdown`
//! request arrives. `--compressed` serves the delta-varint CSR through
//! the same `AdjacencySource` seam the one-shot commands use, so the
//! answers are bit-identical either way.

use super::common_args::{flag_value, parse_threads};
use bga_graph::{AdjacencySource, CompressedCsrGraph};
use bga_serve::{ServeOptions, Server};

/// Runs the `serve` subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let Some(graph_spec) = args.first() else {
        return Err("serve needs a graph: bga serve <graph> [--addr HOST:PORT] \
                    [--threads N] [--cache N] [--compressed]"
            .to_string());
    };
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:4817");
    if addr.is_empty()
        || (flag_value(args, "--addr").is_none() && args.iter().any(|a| a == "--addr"))
    {
        return Err("--addr requires a HOST:PORT value".to_string());
    }
    let mut options = ServeOptions::default();
    if let Some(threads) = parse_threads(args)? {
        options.threads = threads;
    }
    if let Some(cache) = flag_value(args, "--cache") {
        options.cache_capacity = cache
            .parse::<usize>()
            .map_err(|e| format!("invalid --cache value {cache:?}: {e}"))?;
    } else if args.iter().any(|a| a == "--cache") {
        return Err("--cache requires an entry count".to_string());
    }
    let compressed = args.iter().any(|a| a == "--compressed");

    let graph = super::graph_input::load_graph(graph_spec)?;
    if compressed {
        serve(CompressedCsrGraph::from_csr(&graph), addr, options)
    } else {
        serve(graph, addr, options)
    }
}

/// Binds and blocks in the accept loop until shutdown.
fn serve<G: AdjacencySource + Send + Sync + 'static>(
    graph: G,
    addr: &str,
    options: ServeOptions,
) -> Result<(), String> {
    let server =
        Server::bind(graph, addr, options).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let bound = server
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    // Scripts parse this line to learn the port when --addr ends in :0.
    println!("serving on {bound}");
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server.serve().map_err(|e| format!("serve failed: {e}"))?;
    println!("shutdown complete");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn bad_usage_fails_loudly() {
        assert!(run(&[]).is_err());
        assert!(run(&strings(&["/no/such/graph.metis"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--threads"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--cache"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--cache", "lots"])).is_err());
        // An unbindable address fails fast instead of hanging the test.
        assert!(run(&strings(&["cond-mat-2005", "--addr", "256.0.0.1:1"])).is_err());
    }
}
