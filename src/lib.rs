//! # branch-avoiding-graphs
//!
//! Umbrella crate for the reproduction of **"Branch-Avoiding Graph
//! Algorithms"** (Green, Dukhan, Vuduc — SPAA 2015). It re-exports the
//! library crates of the workspace so applications can depend on a single
//! crate:
//!
//! * [`graph`] ([`bga_graph`]) — CSR graphs, generators, I/O, the Table-2
//!   benchmark suite.
//! * [`branchsim`] ([`bga_branchsim`]) — branch-predictor simulators, the
//!   instrumented execution machine and the Table-1 machine cost models.
//! * [`kernels`] ([`bga_kernels`]) — branch-based and branch-avoiding
//!   Shiloach-Vishkin connected components and top-down BFS, baselines,
//!   extensions (Brandes betweenness, k-core bucket peeling, unit-weight
//!   delta-stepping SSSP) and instrumented variants.
//! * [`perfmodel`] ([`bga_perfmodel`]) — misprediction bounds, modelled-time
//!   conversion and correlation analysis.
//! * [`obs`] ([`bga_obs`]) — the structured tracing layer: `bga-trace-v1`
//!   events, the [`bga_obs::TraceSink`] seam the parallel engine loops
//!   emit through (compiled out entirely with the no-op sink), a
//!   dependency-free JSONL writer/parser, stream validation and the
//!   shared table renderer behind the CLI's `--instrumented` and
//!   `trace report` output.
//! * [`parallel`] ([`bga_parallel`]) — multi-threaded kernels on one
//!   traversal engine: atomic fetch-min Shiloach-Vishkin,
//!   level-synchronous parallel BFS (top-down and direction-optimizing
//!   over a shared bitmap frontier), parallel Brandes betweenness
//!   centrality, k-core peeling over atomic degree counters, unit-weight
//!   SSSP on the level loop and weighted delta-stepping SSSP on the
//!   bucket loop, all on a persistent worker pool with edge-balanced
//!   chunking — all behind one request API ([`bga_parallel::request`] /
//!   [`bga_parallel::RunConfig`]).
//! * [`serve`] ([`bga_serve`]) — the long-running TCP query server: one
//!   immutable snapshot, concurrent distance / path / component / core /
//!   betweenness-rank queries over newline-delimited `bga-serve-v1`
//!   JSON, with an LRU result cache and per-query deadlines.
//!
//! ```
//! use branch_avoiding_graphs::prelude::*;
//!
//! // Build a graph, run both SV variants, compare their branch behaviour.
//! let graph = generators::grid_2d(20, 20, generators::MeshStencil::Moore);
//! let based = sv_branch_based_instrumented(&graph);
//! let avoiding = sv_branch_avoiding_instrumented(&graph);
//! assert!(based.labels.same_partition(&avoiding.labels));
//! assert!(
//!     based.counters.total().branch_mispredictions
//!         >= avoiding.counters.total().branch_mispredictions
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use bga_branchsim as branchsim;
pub use bga_graph as graph;
pub use bga_kernels as kernels;
pub use bga_obs as obs;
pub use bga_parallel as parallel;
pub use bga_perfmodel as perfmodel;
pub use bga_serve as serve;

/// Convenient re-exports of the items most applications need.
pub mod prelude {
    pub use bga_branchsim::{
        all_machine_models, BranchSite, ExecMachine, MachineModel, PerfCounters, TwoBitPredictor,
    };
    pub use bga_graph::generators;
    pub use bga_graph::properties;
    pub use bga_graph::suite::{benchmark_suite, SuiteGraphId, SuiteScale};
    pub use bga_graph::{
        uniform_weights, unit_weights, CsrGraph, EdgeWeight, GraphBuilder, VertexId,
        WeightedCsrGraph, WeightedGraphBuilder,
    };
    pub use bga_kernels::bc::{
        betweenness_centrality, betweenness_centrality_branch_avoiding,
        betweenness_centrality_sources,
    };
    pub use bga_kernels::bfs::{
        bfs_branch_avoiding, bfs_branch_avoiding_instrumented, bfs_branch_based,
        bfs_branch_based_instrumented,
        direction_optimizing::{bfs_direction_optimizing, DirectionConfig},
        BfsResult, Bitmap,
    };
    pub use bga_kernels::cc::{
        sv_branch_avoiding, sv_branch_avoiding_instrumented, sv_branch_based,
        sv_branch_based_instrumented, sv_hybrid, ComponentLabels, HybridConfig,
    };
    pub use bga_kernels::kcore::{kcore_peeling, CoreDecomposition};
    pub use bga_kernels::sssp::{
        sssp_delta_stepping, sssp_dijkstra, sssp_unit_delta_stepping,
        sssp_unit_delta_stepping_with_delta, SsspResult,
    };
    pub use bga_obs::{
        parse_trace, validate_trace, JsonlSink, MemorySink, NoopSink, PhaseCounters, PhaseEvent,
        PhaseKind, TraceEvent, TraceReport, TraceSink, TRACE_SCHEMA,
    };
    pub use bga_parallel::request::{
        run, run_betweenness, run_bfs, run_components, run_kcore, run_sssp_unit, run_sssp_weighted,
        KernelOutput, KernelRequest, RequestError,
    };
    pub use bga_parallel::{
        BfsStrategy, BucketLoop, CancelToken, InterruptReason, LevelLoop, PoolConfig, PoolMetrics,
        PoolMonitor, RunConfig, RunOutcome, SweepLoop, TraversalState, Variant, WorkerPool,
    };
    pub use bga_perfmodel::timing::{modeled_speedup, time_run};
    pub use bga_serve::{ServeOptions, Server};
}
