//! Run-level trace scaffolding shared by the traced kernel entry points.
//!
//! The engine loops emit bare [`TraceEvent::Phase`] events; what turns a
//! stream of phases into a well-formed `bga-trace-v1` document is the
//! [`TraceRun`] wrapper below: it emits the `run-start` header, counts and
//! accumulates every phase that flows through it, replays the worker
//! pool's collected metrics, and closes the stream with a `run-end`
//! trailer whose totals are exactly the sum of the forwarded phase
//! counters — the invariant `bga trace validate` checks.

use crate::cancel::RunOutcome;
use crate::pool::{PoolMetrics, WorkerPool};
use bga_graph::GraphFootprint;
use bga_obs::{PhaseCounters, RunFootprint, TraceEvent, TraceSink};
use std::sync::Mutex;
use std::time::Instant;

/// Scopes one kernel run over an inner sink: header on construction,
/// phase accounting while the engine runs, pool metrics and trailer on
/// [`TraceRun::finish`]. Implements [`TraceSink`] itself so it can be
/// handed straight to the engine loops' `run_traced`; with a disabled
/// inner sink every method is a no-op.
pub(crate) struct TraceRun<'a, S: TraceSink> {
    inner: &'a S,
    /// `(phase events forwarded, summed phase counters)`.
    acc: Mutex<(usize, PhaseCounters)>,
    started: Option<Instant>,
}

impl<'a, S: TraceSink> TraceRun<'a, S> {
    /// Emits the `run-start` header and opens the run scope.
    pub(crate) fn start(inner: &'a S, header: TraceEvent) -> Self {
        let started = S::ENABLED.then(Instant::now);
        if S::ENABLED {
            inner.emit(header);
        }
        TraceRun {
            inner,
            acc: Mutex::new((0, PhaseCounters::default())),
            started,
        }
    }

    /// Phase events forwarded so far — the offset base multi-source
    /// drivers (Brandes) give each per-source
    /// [`bga_obs::OffsetSink`] so the whole run's indices stay
    /// consecutive.
    pub(crate) fn phases_so_far(&self) -> usize {
        self.acc.lock().unwrap().0
    }

    /// Replays the pool's collected metrics (when monitored) and emits
    /// the `run-end` trailer. A completed outcome leaves the trailer
    /// plain; an interrupted one marks it with the reason, so the stream
    /// stays a valid `bga-trace-v1` document (header, consecutive phases,
    /// totals that sum) that *says* it stopped early.
    pub(crate) fn finish_with_outcome(self, metrics: Option<PoolMetrics>, outcome: &RunOutcome) {
        if !S::ENABLED {
            return;
        }
        if let Some(metrics) = &metrics {
            emit_pool_metrics(self.inner, metrics);
        }
        let (phases, totals) = *self.acc.lock().unwrap();
        self.inner.emit(TraceEvent::RunEnd {
            phases,
            totals,
            wall_ns: self.started.map_or(0, |t| t.elapsed().as_nanos() as u64),
            interrupted: outcome.reason_str().map(str::to_string),
        });
    }
}

impl<S: TraceSink> TraceSink for TraceRun<'_, S> {
    const ENABLED: bool = S::ENABLED;

    fn emit(&self, event: TraceEvent) {
        if let TraceEvent::Phase(phase) = &event {
            let mut acc = self.acc.lock().unwrap();
            acc.0 += 1;
            acc.1 += phase.counters;
        }
        self.inner.emit(event);
    }
}

/// Converts the graph crate's [`GraphFootprint`] into the owned form the
/// `run-start` header carries (`bga-obs` cannot depend on `bga-graph`, so
/// the trace schema keeps its own copy of the shape).
pub(crate) fn run_footprint(fp: GraphFootprint) -> RunFootprint {
    RunFootprint {
        representation: fp.representation.to_string(),
        adjacency_bytes: fp.adjacency_bytes,
        index_bytes: fp.index_bytes,
        csr_bytes: fp.csr_bytes,
    }
}

/// Emits a `pool-degraded` [`TraceEvent::Warning`] when the run's pool
/// lost workers: the run still completed (dead workers' chunks are
/// drained by the survivors and the submitting thread; with no survivors
/// the pool falls back to inline execution), but the schedule degraded
/// and the trace should say so. Guarded by the sink's `ENABLED` constant
/// like every other emission site.
pub(crate) fn emit_degradation_warning<S: TraceSink>(pool: &WorkerPool, sink: &S) {
    if S::ENABLED && pool.lost_workers() > 0 {
        sink.emit(TraceEvent::Warning {
            code: "pool-degraded".to_string(),
            message: format!(
                "{} of {} pool workers lost; their chunks ran on surviving \
                 threads (inline once none survive)",
                pool.lost_workers(),
                pool.threads().saturating_sub(1),
            ),
        });
    }
}

/// Replays collected [`PoolMetrics`] as one `pool-batch` event per
/// recorded batch followed by the `pool-summary` totals.
fn emit_pool_metrics<S: TraceSink>(sink: &S, metrics: &PoolMetrics) {
    for (batch, record) in metrics.batches.iter().enumerate() {
        sink.emit(TraceEvent::PoolBatch {
            batch,
            chunks: record.chunks,
            claimed: record.claimed.clone(),
            imbalance: record.imbalance(),
        });
    }
    sink.emit(TraceEvent::PoolSummary {
        batches: metrics.batches.len(),
        parks: metrics.parks as usize,
        wakes: metrics.wakes as usize,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::BatchRecord;
    use bga_obs::{MemorySink, NoopSink, PhaseEvent, PhaseKind};

    fn phase(counters_scale: u64) -> TraceEvent {
        TraceEvent::Phase(PhaseEvent {
            index: 0,
            kind: PhaseKind::TopDown,
            bucket: None,
            frontier: 1,
            discovered: 1,
            changed: None,
            counters: PhaseCounters {
                updates: counters_scale,
                edges: 2 * counters_scale,
                ..PhaseCounters::default()
            },
            wall_ns: 0,
        })
    }

    #[test]
    fn run_scope_brackets_phases_with_header_and_totals() {
        let sink = MemorySink::new();
        let scope = TraceRun::start(
            &sink,
            TraceEvent::RunStart {
                kernel: "bfs".to_string(),
                variant: "branch-avoiding".to_string(),
                vertices: 4,
                edges: 6,
                threads: 2,
                grain: 64,
                delta: None,
                root: Some(0),
                footprint: None,
            },
        );
        scope.emit(phase(1));
        assert_eq!(scope.phases_so_far(), 1);
        scope.emit(phase(2));
        scope.finish_with_outcome(
            Some(PoolMetrics {
                batches: vec![BatchRecord {
                    chunks: 4,
                    claimed: vec![3, 1],
                }],
                parks: 5,
                wakes: 4,
            }),
            &RunOutcome::Completed,
        );
        let events = sink.take();
        assert_eq!(events.len(), 6);
        assert!(matches!(events[0], TraceEvent::RunStart { .. }));
        assert!(matches!(
            events[3],
            TraceEvent::PoolBatch {
                batch: 0,
                chunks: 4,
                ..
            }
        ));
        assert!(matches!(
            events[4],
            TraceEvent::PoolSummary {
                batches: 1,
                parks: 5,
                wakes: 4
            }
        ));
        match &events[5] {
            TraceEvent::RunEnd { phases, totals, .. } => {
                assert_eq!(*phases, 2);
                assert_eq!(totals.updates, 3);
                assert_eq!(totals.edges, 6);
            }
            other => panic!("expected run-end, got {other:?}"),
        }
    }

    #[test]
    fn interrupted_outcomes_mark_the_trailer() {
        use crate::cancel::InterruptReason;
        let sink = MemorySink::new();
        let scope = TraceRun::start(
            &sink,
            TraceEvent::RunStart {
                kernel: "cc".to_string(),
                variant: "branch-avoiding".to_string(),
                vertices: 4,
                edges: 6,
                threads: 2,
                grain: 64,
                delta: None,
                root: None,
                footprint: None,
            },
        );
        scope.emit(phase(1));
        scope.finish_with_outcome(
            None,
            &RunOutcome::Interrupted {
                reason: InterruptReason::DeadlineExpired,
                phases_done: 1,
            },
        );
        let events = sink.take();
        match events.last() {
            Some(TraceEvent::RunEnd {
                phases,
                interrupted,
                ..
            }) => {
                assert_eq!(*phases, 1);
                assert_eq!(interrupted.as_deref(), Some("deadline"));
            }
            other => panic!("expected run-end, got {other:?}"),
        }
    }

    #[test]
    #[cfg(debug_assertions)] // the fault seam compiles out of release builds
    fn lost_workers_surface_as_a_degradation_warning() {
        use crate::fault::FaultPlan;
        use crate::pool::{even_ranges, Execute};

        let pool = WorkerPool::with_faults(2, FaultPlan::new().kill_worker(0, 1));
        let mut spins = 0;
        while pool.lost_workers() < 1 {
            pool.run(even_ranges(8, 4), |_i, range| range.sum::<usize>());
            spins += 1;
            assert!(spins < 10_000, "worker never picked up a batch");
            std::thread::yield_now();
        }
        let sink = MemorySink::new();
        emit_degradation_warning(&pool, &sink);
        match sink.take().as_slice() {
            [TraceEvent::Warning { code, message }] => {
                assert_eq!(code, "pool-degraded");
                assert!(message.contains("1 of 1"), "unexpected message {message:?}");
            }
            other => panic!("expected one pool-degraded warning, got {other:?}"),
        }
        // A healthy pool warns about nothing.
        let healthy = WorkerPool::new(2);
        emit_degradation_warning(&healthy, &sink);
        assert!(sink.take().is_empty());
    }

    #[test]
    fn disabled_scope_emits_nothing() {
        let scope = TraceRun::start(
            &NoopSink,
            TraceEvent::RunEnd {
                phases: 0,
                totals: PhaseCounters::default(),
                wall_ns: 0,
                interrupted: None,
            },
        );
        const _: () = assert!(!TraceRun::<'static, NoopSink>::ENABLED);
        assert!(scope.started.is_none());
        scope.finish_with_outcome(None, &RunOutcome::Completed);
    }
}
