//! `bga kcore`: run a k-core decomposition and print the core structure.
//!
//! Without `--threads` the sequential Batagelj–Zaveršnik bucket peeling
//! runs; with `--threads N` the parallel concurrent-peeling kernel runs in
//! the requested hooking discipline (`--variant branch-based` tests and
//! CAS-decrements each neighbour's degree, `branch-avoiding` issues one
//! unconditional `fetch_sub` per edge with a predicated enqueue). Core
//! numbers are identical in every mode.

use super::cc::{deadline_token, flag_value, parse_threads};
use super::graph_input::{footprint_line, load_graph};
use super::CliError;
use bga_graph::AdjacencySource;
use bga_kernels::kcore::{kcore_peeling, CoreDecomposition};
use bga_obs::step_table;
use bga_parallel::{
    par_kcore_instrumented, par_kcore_traced, par_kcore_traced_with_cancel, par_kcore_with_cancel,
    par_kcore_with_stats, resolve_threads, KcoreVariant, RunOutcome,
};
use std::time::Instant;

/// Runs the `kcore` subcommand.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let Some(graph_spec) = args.first() else {
        return Err("kcore needs a graph".into());
    };
    let variant = flag_value(args, "--variant").unwrap_or("branch-avoiding");
    let kcore_variant = match variant {
        "branch-based" => KcoreVariant::BranchBased,
        "branch-avoiding" => KcoreVariant::BranchAvoiding,
        other => {
            return Err(format!(
                "unknown kcore variant {other:?} (expected branch-based or branch-avoiding)"
            )
            .into())
        }
    };
    let threads = parse_threads(args)?;
    let instrumented = args.iter().any(|a| a == "--instrumented");
    // The sequential reference is bucket peeling — neither hooking
    // discipline. Reject an explicit variant request it could not honour.
    if threads.is_none() && flag_value(args, "--variant").is_some() {
        return Err(
            "the sequential run is the bucket-peeling reference; add --threads N \
             to pick a branch-based or branch-avoiding parallel peel"
                .into(),
        );
    }
    if threads.is_none() && instrumented {
        return Err("--instrumented requires --threads N (parallel peels only)".into());
    }
    let trace_path = super::trace::parse_trace_path(args)?;
    if trace_path.is_some() && threads.is_none() {
        return Err("--trace requires --threads N (only parallel peels are traced)".into());
    }
    if trace_path.is_some() && instrumented {
        return Err(
            "--trace and --instrumented are exclusive (the trace carries the counters)".into(),
        );
    }
    let token = deadline_token(args, threads, instrumented)?;

    let graph = load_graph(graph_spec)?;
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    // Report the resolved worker count before the timed region so the
    // stdout write does not bias sequential-vs-parallel wall clocks.
    if let Some(t) = threads {
        println!("threads: {}", resolve_threads(t));
    }

    if let (Some(path), Some(t)) = (trace_path, threads) {
        let sink = super::trace::open_trace_sink(path)?;
        let (run, outcome) = match &token {
            None => (par_kcore_traced(&graph, t, kcore_variant, &sink), None),
            Some(tok) => {
                let (run, outcome) =
                    par_kcore_traced_with_cancel(&graph, t, kcore_variant, &sink, tok);
                (run, Some(outcome))
            }
        };
        super::trace::finish_trace_sink(path, sink)?;
        let outcome = outcome.unwrap_or(RunOutcome::Completed);
        print_full_or_partial_summary(variant, &run.cores, &outcome);
        println!("cascade rounds: {}", run.rounds);
        super::check_deadline(&outcome)?;
        return Ok(());
    }

    if let (Some(t), Some(tok)) = (threads, &token) {
        let start = Instant::now();
        let (run, outcome) = par_kcore_with_cancel(&graph, t, kcore_variant, tok);
        let elapsed = start.elapsed();
        print_full_or_partial_summary(variant, &run.cores, &outcome);
        println!("cascade rounds: {}", run.rounds);
        println!("wall clock: {:.3} ms", elapsed.as_secs_f64() * 1e3);
        super::check_deadline(&outcome)?;
        return Ok(());
    }

    if let (Some(t), true) = (threads, instrumented) {
        let run = par_kcore_instrumented(&graph, t, kcore_variant);
        print_core_summary(variant, &run.cores);
        println!("cascade rounds: {}", run.rounds);
        println!("{}", footprint_line(&graph.footprint()));
        println!("totals: {}", run.counters.total());
        print!("{}", step_table("dispatch", &run.counters.steps).render());
        return Ok(());
    }

    let start = Instant::now();
    let (cores, rounds) = match threads {
        None => (kcore_peeling(&graph), None),
        Some(t) => {
            let (cores, rounds) = par_kcore_with_stats(&graph, t, kcore_variant);
            (cores, Some(rounds))
        }
    };
    let elapsed = start.elapsed();
    print_core_summary(
        if threads.is_some() {
            variant
        } else {
            "peeling"
        },
        &cores,
    );
    if let Some(rounds) = rounds {
        println!("cascade rounds: {rounds}");
    }
    println!("wall clock: {:.3} ms", elapsed.as_secs_f64() * 1e3);
    Ok(())
}

/// The cancellable paths' summary: a completed peel prints the usual core
/// structure; an interrupted one reports the peeled prefix instead — the
/// unpeeled vertices still carry the `u32::MAX` "not yet peeled" marker,
/// so the degeneracy/histogram view would be meaningless (and huge).
fn print_full_or_partial_summary(
    variant: &str,
    cores: &CoreDecomposition,
    outcome: &bga_parallel::RunOutcome,
) {
    if outcome.is_completed() {
        print_core_summary(variant, cores);
    } else {
        let peeled = cores.as_slice().iter().filter(|&&c| c != u32::MAX).count();
        println!("variant: {variant}");
        println!(
            "peeled: {peeled} of {} vertices (final core numbers; the rest interrupted)",
            cores.len()
        );
    }
}

fn print_core_summary(variant: &str, cores: &CoreDecomposition) {
    println!("variant: {variant}");
    println!("degeneracy: {}", cores.degeneracy());
    let histogram = cores.histogram();
    let shown = histogram.len().min(8);
    let rendered: Vec<String> = histogram[..shown]
        .iter()
        .enumerate()
        .map(|(k, count)| format!("{k}:{count}"))
        .collect();
    let suffix = if histogram.len() > shown { " …" } else { "" };
    println!("coreness histogram: {}{suffix}", rendered.join(" "));
    println!(
        "innermost core: {} vertices at k = {}",
        cores.k_core_size(cores.degeneracy()),
        cores.degeneracy()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn runs_sequential_and_parallel_on_a_builtin_graph() {
        assert!(run(&strings(&["cond-mat-2005"])).is_ok());
        for variant in ["branch-based", "branch-avoiding"] {
            assert!(
                run(&strings(&[
                    "cond-mat-2005",
                    "--variant",
                    variant,
                    "--threads",
                    "2"
                ]))
                .is_ok(),
                "{variant} with --threads failed"
            );
        }
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--instrumented"
        ]))
        .is_ok());
    }

    #[test]
    fn trace_flag_writes_a_jsonl_document() {
        let dir = std::env::temp_dir().join("bga_cli_kcore_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kcore.jsonl");
        let path_str = path.to_str().unwrap();
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--trace",
            path_str
        ]))
        .is_ok());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().next().unwrap().contains("bga-trace-v1"));
        assert!(run(&strings(&["cond-mat-2005", "--trace", path_str])).is_err());
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--instrumented",
            "--trace",
            path_str
        ]))
        .is_err());
    }

    #[test]
    fn timeout_flag_bounds_the_parallel_peel() {
        use super::super::CliError;
        assert_eq!(
            run(&strings(&[
                "cond-mat-2005",
                "--threads",
                "2",
                "--timeout-ms",
                "60000"
            ])),
            Ok(())
        );
        assert_eq!(
            run(&strings(&[
                "cond-mat-2005",
                "--threads",
                "2",
                "--timeout-ms",
                "0"
            ])),
            Err(CliError::DeadlineExpired)
        );
        // A deadline needs the parallel peel and excludes --instrumented.
        assert!(run(&strings(&["cond-mat-2005", "--timeout-ms", "5"])).is_err());
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--instrumented",
            "--timeout-ms",
            "5"
        ]))
        .is_err());
        // A timed-out traced run still writes an interrupted trace.
        let dir = std::env::temp_dir().join("bga_cli_kcore_timeout");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kcore.jsonl");
        assert_eq!(
            run(&strings(&[
                "cond-mat-2005",
                "--threads",
                "2",
                "--timeout-ms",
                "0",
                "--trace",
                path.to_str().unwrap()
            ])),
            Err(CliError::DeadlineExpired)
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"interrupted\""));
    }

    #[test]
    fn bad_usage_fails_loudly() {
        assert!(run(&[]).is_err());
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--variant",
            "sideways",
            "--threads",
            "2"
        ]))
        .is_err());
        // Sequential runs are the peeling reference: an explicit variant
        // or --instrumented without --threads is an error.
        assert!(run(&strings(&["cond-mat-2005", "--variant", "branch-avoiding"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--instrumented"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--threads"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--threads", "x"])).is_err());
    }
}
