//! Shared experiment plumbing: suite construction, root selection and
//! paired (branch-based, branch-avoiding) instrumented runs.

use bga_branchsim::{all_machine_models, MachineModel};
use bga_graph::properties::largest_component;
use bga_graph::suite::{benchmark_suite, SuiteGraph, SuiteScale};
use bga_graph::{CsrGraph, VertexId};
use bga_kernels::bfs::{bfs_branch_avoiding_instrumented, bfs_branch_based_instrumented, BfsRun};
use bga_kernels::cc::{sv_branch_avoiding_instrumented, sv_branch_based_instrumented, SvRun};

/// Everything a figure/table binary needs: the five suite graphs and the
/// seven machine models.
pub struct ExperimentContext {
    /// Synthetic stand-ins for the Table-2 graphs.
    pub suite: Vec<SuiteGraph>,
    /// Cost models for the Table-1 systems.
    pub machines: Vec<MachineModel>,
    /// Scale the suite was generated at.
    pub scale: SuiteScale,
    /// Seed used for the random suite members.
    pub seed: u64,
}

impl ExperimentContext {
    /// Builds the context from the `BGA_SUITE_SCALE` (small|full) and
    /// `BGA_SEED` environment variables, defaulting to the small suite and
    /// seed 42.
    pub fn from_env() -> Self {
        let scale = match std::env::var("BGA_SUITE_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => SuiteScale::Full,
            _ => SuiteScale::Small,
        };
        let seed = std::env::var("BGA_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42);
        Self::new(scale, seed)
    }

    /// Builds the context explicitly.
    pub fn new(scale: SuiteScale, seed: u64) -> Self {
        ExperimentContext {
            suite: benchmark_suite(scale, seed),
            machines: all_machine_models(),
            scale,
            seed,
        }
    }
}

/// BFS root used throughout the experiments: the smallest vertex id inside
/// the largest connected component (so every run traverses the giant
/// component, as the paper's traversals do).
pub fn bfs_root(graph: &CsrGraph) -> VertexId {
    largest_component(graph).first().copied().unwrap_or(0)
}

/// Runs both instrumented SV variants on a graph.
pub fn sv_pair(graph: &CsrGraph) -> (SvRun, SvRun) {
    (
        sv_branch_based_instrumented(graph),
        sv_branch_avoiding_instrumented(graph),
    )
}

/// Runs both instrumented BFS variants from the canonical root.
pub fn bfs_pair(graph: &CsrGraph) -> (BfsRun, BfsRun) {
    let root = bfs_root(graph);
    (
        bfs_branch_based_instrumented(graph, root),
        bfs_branch_avoiding_instrumented(graph, root),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bga_graph::suite::SuiteScale;

    #[test]
    fn context_has_five_graphs_and_seven_machines() {
        let ctx = ExperimentContext::new(SuiteScale::Small, 1);
        assert_eq!(ctx.suite.len(), 5);
        assert_eq!(ctx.machines.len(), 7);
    }

    #[test]
    fn bfs_root_lands_in_the_largest_component() {
        use bga_graph::GraphBuilder;
        // Vertices {0} isolated; {1,2,3} form the giant component.
        let g = GraphBuilder::undirected(4)
            .add_edges([(1, 2), (2, 3)])
            .build();
        assert_eq!(bfs_root(&g), 1);
        assert_eq!(bfs_root(&GraphBuilder::undirected(0).build()), 0);
    }

    #[test]
    fn paired_runs_agree_on_results() {
        let ctx = ExperimentContext::new(SuiteScale::Small, 7);
        // Use the smallest suite graph to keep the test quick.
        let g = &ctx
            .suite
            .iter()
            .min_by_key(|sg| sg.graph.num_vertices())
            .unwrap()
            .graph;
        let (sv_based, sv_avoiding) = sv_pair(g);
        assert!(sv_based.labels.same_partition(&sv_avoiding.labels));
        let (bfs_based, bfs_avoiding) = bfs_pair(g);
        assert_eq!(
            bfs_based.result.distances(),
            bfs_avoiding.result.distances()
        );
    }
}
