//! Integration tests: the analytical bounds of `bga-perfmodel` (paper
//! Sections 3-5) hold for the mispredictions measured by the simulation
//! substrate, across graph families and predictor variants.

use branch_avoiding_graphs::branchsim::loop_model::{simulate_repeated_loop, simulate_simple_loop};
use branch_avoiding_graphs::branchsim::markov::steady_state_miss_rate;
use branch_avoiding_graphs::branchsim::TwoBitState;
use branch_avoiding_graphs::graph::generators::{
    barabasi_albert, erdos_renyi_gnm, grid_3d, MeshStencil,
};
use branch_avoiding_graphs::graph::transform::relabel_random;
use branch_avoiding_graphs::kernels::bfs::{
    bfs_branch_avoiding_instrumented, bfs_branch_based_instrumented,
};
use branch_avoiding_graphs::kernels::cc::{
    sv_branch_avoiding_instrumented, sv_branch_based_instrumented,
};
use branch_avoiding_graphs::perfmodel::bounds::{
    bfs_misprediction_lower_bound, bfs_misprediction_upper_bound, sv_misprediction_lower_bound,
};
use proptest::prelude::*;

fn suite() -> Vec<branch_avoiding_graphs::graph::CsrGraph> {
    vec![
        relabel_random(&grid_3d(10, 10, 10, MeshStencil::Moore), 2),
        relabel_random(&grid_3d(20, 6, 5, MeshStencil::VonNeumann), 3),
        barabasi_albert(2_000, 3, 4),
    ]
}

#[test]
fn sv_branch_avoiding_mispredictions_stay_within_a_small_factor_of_the_bound() {
    for g in suite() {
        let run = sv_branch_avoiding_instrumented(&g);
        let bound = sv_misprediction_lower_bound(g.num_vertices(), run.iterations());
        let measured = run.counters.total().branch_mispredictions;
        let ratio = measured as f64 / bound as f64;
        assert!(
            (0.5..=1.3).contains(&ratio),
            "branch-avoiding SV should be near its lower bound, got {ratio:.3}"
        );
    }
}

#[test]
fn sv_branch_based_always_mispredicts_at_least_as_much_as_branch_avoiding() {
    for g in suite() {
        let based = sv_branch_based_instrumented(&g).counters.total();
        let avoiding = sv_branch_avoiding_instrumented(&g).counters.total();
        assert!(based.branch_mispredictions >= avoiding.branch_mispredictions);
    }
}

#[test]
fn bfs_mispredictions_sit_between_the_bounds() {
    for g in suite() {
        let based = bfs_branch_based_instrumented(&g, 0);
        let avoiding = bfs_branch_avoiding_instrumented(&g, 0);
        let found = based.result.reached_count();
        let lower = bfs_misprediction_lower_bound(found);
        let upper = bfs_misprediction_upper_bound(found);
        let m_based = based.counters.total().branch_mispredictions;
        let m_avoiding = avoiding.counters.total().branch_mispredictions;
        assert!(m_avoiding <= m_based);
        assert!(
            m_based <= upper,
            "branch-based BFS must respect the 3|V| upper bound: {m_based} vs {upper}"
        );
        assert!(
            (m_avoiding as f64) <= 1.3 * lower as f64,
            "branch-avoiding BFS should hug the lower bound: {m_avoiding} vs {lower}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma bounds hold for arbitrary loop shapes and start states.
    #[test]
    fn simple_loop_misses_never_exceed_three(
        n in 0u64..200,
        state_index in 0usize..4,
    ) {
        let init = TwoBitState::ALL[state_index];
        let run = simulate_simple_loop(init, n);
        prop_assert!(run.mispredictions <= 3);
    }

    /// Lemma 3's k+2 bound holds under its stated preconditions: the first
    /// execution has trip count >= 3, subsequent executions >= 1.
    #[test]
    fn repeated_loop_misses_respect_k_plus_2(
        first_trip in 3u64..20,
        rest in prop::collection::vec(1u64..20, 0..50),
        state_index in 0usize..4,
    ) {
        let init = TwoBitState::ALL[state_index];
        let mut trip_counts = vec![first_trip];
        trip_counts.extend_from_slice(&rest);
        let run = simulate_repeated_loop(init, &trip_counts);
        prop_assert!(run.mispredictions <= trip_counts.len() as u64 + 2);
    }

    /// The Markov steady-state miss rate is bounded by 2x the best static
    /// predictor for every probability.
    #[test]
    fn markov_rate_is_within_twice_the_oracle(p in 0.0f64..=1.0) {
        let rate = steady_state_miss_rate(p);
        prop_assert!(rate <= 2.0 * p.min(1.0 - p) + 1e-9);
        prop_assert!(rate >= 0.0);
    }

    /// Misprediction ordering (avoiding <= based) holds on random graphs,
    /// not just the curated suite.
    #[test]
    fn misprediction_ordering_on_random_graphs(
        n in 2usize..80,
        edge_factor in 1usize..4,
        seed in 0u64..300,
    ) {
        let m = (n * edge_factor / 2).min(n * (n - 1) / 2);
        let g = erdos_renyi_gnm(n, m, seed);
        let based = sv_branch_based_instrumented(&g).counters.total();
        let avoiding = sv_branch_avoiding_instrumented(&g).counters.total();
        prop_assert!(based.branch_mispredictions >= avoiding.branch_mispredictions);
        prop_assert!(based.branches > avoiding.branches);
        prop_assert_eq!(based.loads, avoiding.loads);
    }
}
