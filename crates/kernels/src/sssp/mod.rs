//! Single-source shortest paths (extension), weighted and unit-weight.
//!
//! The paper's introduction lists SSSP among the traversal-shaped
//! algorithm families its findings extend to. Delta-stepping (Meyer &
//! Sanders) is the scalable frame: tentative distances are partitioned
//! into buckets of width `Δ`, light edges (weight ≤ `Δ`) are re-relaxed
//! within a bucket, heavy edges once per settled vertex. On *unit*
//! weights with `Δ = 1` the loop collapses into level-synchronous BFS:
//! the bucket holding tentative distances in `[i, i + 1)` is exactly BFS
//! level `i`, each bucket settles in a single relaxation phase, and the
//! settling order is the BFS level order. The parallel clients ride both
//! regimes: `bga_parallel::sssp` runs the unit case on the engine's level
//! loop and the weighted case on the engine's bucket loop, inheriting the
//! branch-based/branch-avoiding contrast either way.
//!
//! * [`delta_stepping::sssp_delta_stepping`] — the sequential weighted
//!   kernel: a real bucketed delta-stepping loop with the light/heavy
//!   split at `Δ`.
//! * [`delta_stepping::sssp_unit_delta_stepping`] — the unit-weight
//!   instantiation of the same loop (any `Δ ≥ 1`), cross-validated
//!   against the BFS reference.
//! * [`dijkstra::sssp_dijkstra`] — the heap-ordered weighted reference
//!   the delta-stepping kernels cross-validate against.
//! * [`SsspResult`] — distances plus the number of relaxation phases the
//!   run settled in.

pub mod delta_stepping;
pub mod dijkstra;

pub use delta_stepping::{
    sssp_delta_stepping, sssp_unit_delta_stepping, sssp_unit_delta_stepping_with_delta,
};
pub use dijkstra::sssp_dijkstra;

use crate::bfs::INFINITY;

/// Result of a single-source shortest-path run on unit weights.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SsspResult {
    distances: Vec<u32>,
    phases: usize,
}

impl SsspResult {
    /// Wraps per-vertex distances (`INFINITY` = unreached) and the number
    /// of relaxation phases the run executed.
    pub fn new(distances: Vec<u32>, phases: usize) -> Self {
        SsspResult { distances, phases }
    }

    /// Distance of every vertex from the source (`u32::MAX` = unreached).
    pub fn distances(&self) -> &[u32] {
        &self.distances
    }

    /// Distance of vertex `v` from the source.
    pub fn distance(&self, v: u32) -> u32 {
        self.distances[v as usize]
    }

    /// Number of relaxation phases the run executed. With `Δ = 1` this is
    /// the number of non-empty distance levels (eccentricity + 1); larger
    /// deltas may settle one bucket over several phases.
    pub fn phases(&self) -> usize {
        self.phases
    }

    /// Number of vertices reached from the source (including it).
    pub fn reached_count(&self) -> usize {
        self.distances.iter().filter(|&&d| d != INFINITY).count()
    }

    /// The largest finite distance, or `None` when nothing was reached
    /// (source out of range).
    pub fn max_distance(&self) -> Option<u32> {
        self.distances
            .iter()
            .copied()
            .filter(|&d| d != INFINITY)
            .max()
    }

    /// Consumes the result into the raw distance vector.
    pub fn into_distances(self) -> Vec<u32> {
        self.distances
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_accessors() {
        let r = SsspResult::new(vec![0, 1, INFINITY, 2], 3);
        assert_eq!(r.distance(0), 0);
        assert_eq!(r.distances(), &[0, 1, INFINITY, 2]);
        assert_eq!(r.phases(), 3);
        assert_eq!(r.reached_count(), 3);
        assert_eq!(r.max_distance(), Some(2));
        assert_eq!(r.into_distances(), vec![0, 1, INFINITY, 2]);
    }

    #[test]
    fn unreached_runs_have_no_max_distance() {
        let r = SsspResult::new(vec![INFINITY, INFINITY], 0);
        assert_eq!(r.reached_count(), 0);
        assert_eq!(r.max_distance(), None);
    }
}
