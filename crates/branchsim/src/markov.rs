//! Markov-chain analysis of the 2-bit predictor.
//!
//! The paper notes that the behaviour of history-based predictors "may be
//! formalized mathematically using Markov chains" but omits the details.
//! This module supplies them: for a branch whose outcomes are i.i.d.
//! Bernoulli(`p` taken), the 2-bit FSA is a 4-state Markov chain whose
//! stationary distribution gives the steady-state misprediction rate. The
//! closed form is checked against direct simulation in the tests and used by
//! the data-dependent-branch estimates in `bga-perfmodel`.

use crate::predictor::{Outcome, TwoBitState};

/// Ordering of states used for the transition matrix rows/columns:
/// `[StronglyNotTaken, WeaklyNotTaken, WeaklyTaken, StronglyTaken]`.
pub const STATE_ORDER: [TwoBitState; 4] = TwoBitState::ALL;

fn state_index(s: TwoBitState) -> usize {
    STATE_ORDER
        .iter()
        .position(|&x| x == s)
        .expect("state present in ordering")
}

/// Row-stochastic transition matrix of the 2-bit FSA for a branch taken with
/// probability `p`: `matrix[i][j]` is the probability of moving from state
/// `i` to state `j` on one branch execution.
pub fn transition_matrix(p: f64) -> [[f64; 4]; 4] {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut m = [[0.0; 4]; 4];
    for (i, &s) in STATE_ORDER.iter().enumerate() {
        let taken_next = state_index(s.next(Outcome::Taken));
        let not_taken_next = state_index(s.next(Outcome::NotTaken));
        m[i][taken_next] += p;
        m[i][not_taken_next] += 1.0 - p;
    }
    m
}

/// Stationary distribution of the chain, by power iteration from the uniform
/// distribution (the chain is small; 10_000 iterations is far more than
/// enough to converge for any `p` strictly inside (0, 1), and the boundary
/// cases are handled exactly).
pub fn stationary_distribution(p: f64) -> [f64; 4] {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    if p == 0.0 {
        return [1.0, 0.0, 0.0, 0.0];
    }
    if p == 1.0 {
        return [0.0, 0.0, 0.0, 1.0];
    }
    let m = transition_matrix(p);
    let mut dist = [0.25f64; 4];
    for _ in 0..10_000 {
        let mut next = [0.0f64; 4];
        for (i, &d) in dist.iter().enumerate() {
            for j in 0..4 {
                next[j] += d * m[i][j];
            }
        }
        dist = next;
    }
    dist
}

/// Closed-form stationary distribution. With `q = 1 - p`, the chain's
/// detailed-balance structure gives stationary weights proportional to
/// `[q^2/p * q, q^2/p * p, p^2/q * q, p^2/q * p]` ... rather than carry the
/// algebra in a comment, the exact expression implemented here is
/// `pi = [q^3, p q^2, p^2 q, p^3] / (q^3 + p q^2 + p^2 q + p^3)`, which the
/// tests verify against power iteration to 1e-9.
pub fn stationary_distribution_closed_form(p: f64) -> [f64; 4] {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let q = 1.0 - p;
    let weights = [q * q * q, p * q * q, p * p * q, p * p * p];
    let total: f64 = weights.iter().sum();
    if total == 0.0 {
        // Only possible at the boundaries, handled explicitly.
        return if p >= 0.5 {
            [0.0, 0.0, 0.0, 1.0]
        } else {
            [1.0, 0.0, 0.0, 0.0]
        };
    }
    [
        weights[0] / total,
        weights[1] / total,
        weights[2] / total,
        weights[3] / total,
    ]
}

/// Steady-state misprediction rate of a 2-bit predictor on an i.i.d.
/// Bernoulli(`p`) branch: the probability that the state's prediction
/// disagrees with the drawn outcome, under the stationary distribution.
pub fn steady_state_miss_rate(p: f64) -> f64 {
    let pi = stationary_distribution_closed_form(p);
    let q = 1.0 - p;
    // Not-taken-predicting states miss when the branch is taken (prob p);
    // taken-predicting states miss when it is not taken (prob q).
    (pi[0] + pi[1]) * p + (pi[2] + pi[3]) * q
}

/// Misprediction rate of the *static best* predictor for comparison: always
/// guessing the more likely direction gives `min(p, 1 - p)`.
pub fn oracle_static_miss_rate(p: f64) -> f64 {
    p.min(1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{PredictorModel, TwoBitPredictor};
    use crate::site::BranchSite;

    #[test]
    fn rows_of_transition_matrix_sum_to_one() {
        for &p in &[0.0, 0.1, 0.33, 0.5, 0.77, 1.0] {
            let m = transition_matrix(p);
            for row in &m {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "p={p}: row sums to {s}");
            }
        }
    }

    #[test]
    fn closed_form_matches_power_iteration() {
        for &p in &[0.01, 0.2, 0.5, 0.66, 0.9, 0.999] {
            let a = stationary_distribution(p);
            let b = stationary_distribution_closed_form(p);
            for i in 0..4 {
                assert!(
                    (a[i] - b[i]).abs() < 1e-9,
                    "p={p}, state {i}: {} vs {}",
                    a[i],
                    b[i]
                );
            }
        }
    }

    #[test]
    fn boundary_probabilities() {
        assert_eq!(stationary_distribution(1.0), [0.0, 0.0, 0.0, 1.0]);
        assert_eq!(stationary_distribution(0.0), [1.0, 0.0, 0.0, 0.0]);
        assert_eq!(steady_state_miss_rate(1.0), 0.0);
        assert_eq!(steady_state_miss_rate(0.0), 0.0);
    }

    #[test]
    fn miss_rate_is_maximal_at_half() {
        let half = steady_state_miss_rate(0.5);
        assert!(
            (half - 0.5).abs() < 1e-9,
            "at p=0.5 the rate is exactly 0.5"
        );
        for &p in &[0.1, 0.3, 0.45, 0.55, 0.8, 0.95] {
            assert!(steady_state_miss_rate(p) <= half + 1e-12);
        }
    }

    #[test]
    fn miss_rate_is_symmetric_in_p() {
        for &p in &[0.05, 0.2, 0.35, 0.49] {
            let a = steady_state_miss_rate(p);
            let b = steady_state_miss_rate(1.0 - p);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn two_bit_is_never_much_worse_than_twice_the_oracle() {
        // Classic result: a 2-bit predictor's miss rate is at most ~2x the
        // best static predictor on i.i.d. branches.
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let dynamic = steady_state_miss_rate(p);
            let oracle = oracle_static_miss_rate(p);
            assert!(
                dynamic <= 2.0 * oracle + 1e-9,
                "p={p}: {dynamic} vs {oracle}"
            );
        }
    }

    #[test]
    fn analytic_rate_matches_monte_carlo_simulation() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        const SITE: BranchSite = BranchSite::new(0, "mc");
        let mut rng = StdRng::seed_from_u64(1234);
        for &p in &[0.1, 0.5, 0.85] {
            let mut predictor = TwoBitPredictor::new();
            let trials = 400_000u64;
            let mut misses = 0u64;
            for _ in 0..trials {
                let outcome = Outcome::from_bool(rng.gen::<f64>() < p);
                if !predictor.record(SITE, outcome) {
                    misses += 1;
                }
            }
            let empirical = misses as f64 / trials as f64;
            let analytic = steady_state_miss_rate(p);
            assert!(
                (empirical - analytic).abs() < 0.01,
                "p={p}: empirical {empirical} vs analytic {analytic}"
            );
        }
    }
}
