//! Integration tests for the `bga-parallel` subsystem: parallel SV labels,
//! parallel BFS distances, parallel Brandes betweenness scores, parallel
//! k-core numbers and parallel SSSP distances (unit-weight on the level
//! loop, weighted delta-stepping on the bucket loop, the latter under the
//! `wsssp_` prefix the CI grain-1 filter selects) must be identical to the
//! sequential kernels and the reference implementations — on the Table-2
//! suite stand-ins and on randomly relabelled generator graphs —
//! deterministically, for thread counts 1, 2 and 8.

use branch_avoiding_graphs::graph::generators::{barabasi_albert, erdos_renyi_gnm};
use branch_avoiding_graphs::graph::properties::bellman_ford_reference;
use branch_avoiding_graphs::graph::properties::{
    bfs_distances_reference, connected_components_union_find,
};
use branch_avoiding_graphs::graph::suite::{benchmark_suite, SuiteScale};
use branch_avoiding_graphs::graph::transform::relabel_random;
use branch_avoiding_graphs::graph::transform::relabel_random_weighted;
use branch_avoiding_graphs::graph::weighted::{uniform_weights, unit_weights, WeightedCsrGraph};
use branch_avoiding_graphs::graph::CsrGraph;
use branch_avoiding_graphs::kernels::bc::{betweenness_centrality, betweenness_centrality_sources};
use branch_avoiding_graphs::kernels::bfs::direction_optimizing::{
    bfs_direction_optimizing, DirectionConfig,
};
use branch_avoiding_graphs::kernels::bfs::BfsResult;
use branch_avoiding_graphs::kernels::bfs::{bfs_branch_avoiding, bfs_branch_based};
use branch_avoiding_graphs::kernels::cc::ComponentLabels;
use branch_avoiding_graphs::kernels::cc::{sv_branch_avoiding, sv_branch_based};
use branch_avoiding_graphs::kernels::kcore::kcore_peeling;
use branch_avoiding_graphs::kernels::kcore::CoreDecomposition;
use branch_avoiding_graphs::kernels::sssp::SsspResult;
use branch_avoiding_graphs::kernels::sssp::{
    sssp_delta_stepping, sssp_dijkstra, sssp_unit_delta_stepping,
    sssp_unit_delta_stepping_with_delta,
};
use branch_avoiding_graphs::parallel::request::{
    run_betweenness, run_bfs, run_components, run_kcore, run_sssp_unit, run_sssp_weighted,
};
use branch_avoiding_graphs::parallel::{BfsStrategy, ParDirBfsRun, RunConfig, Variant};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn config(threads: usize) -> RunConfig<'static> {
    RunConfig::new().threads(threads)
}

fn instrumented(threads: usize) -> RunConfig<'static> {
    RunConfig::new().threads(threads).instrumented(true)
}

fn par_sv(g: &CsrGraph, threads: usize, variant: Variant) -> ComponentLabels {
    run_components(g, variant, &config(threads)).0.labels
}

fn par_bfs(g: &CsrGraph, root: u32, threads: usize, variant: Variant) -> BfsResult {
    run_bfs(g, root, BfsStrategy::Plain(variant), &config(threads))
        .0
        .result
}

fn par_dir_bfs(g: &CsrGraph, root: u32, threads: usize, config_: DirectionConfig) -> ParDirBfsRun {
    run_bfs(
        g,
        root,
        BfsStrategy::DirectionOptimizing(config_),
        &config(threads),
    )
    .0
}

fn par_kcore(g: &CsrGraph, threads: usize, variant: Variant) -> CoreDecomposition {
    run_kcore(g, variant, &config(threads)).0.cores
}

fn par_sssp(g: &CsrGraph, source: u32, threads: usize, variant: Variant) -> SsspResult {
    run_sssp_unit(g, source, variant, &config(threads)).0.result
}

fn par_wsssp(
    g: &WeightedCsrGraph,
    source: u32,
    delta: u32,
    threads: usize,
    variant: Variant,
) -> SsspResult {
    run_sssp_weighted(g, source, delta, variant, &config(threads))
        .0
        .result
}

fn par_bc(g: &CsrGraph, sources: Option<&[u32]>, threads: usize, variant: Variant) -> Vec<f64> {
    run_betweenness(g, variant, sources, &config(threads))
        .0
        .scores
}

fn assert_parallel_sv_matches_sequential(graph: &CsrGraph) {
    let expected = sv_branch_based(graph);
    assert_eq!(
        expected.as_slice(),
        sv_branch_avoiding(graph).as_slice(),
        "sequential variants disagree — broken precondition"
    );
    for threads in THREAD_COUNTS {
        assert_eq!(
            par_sv(graph, threads, Variant::BranchBased).as_slice(),
            expected.as_slice(),
            "parallel branch-based SV diverged at {threads} threads"
        );
        assert_eq!(
            par_sv(graph, threads, Variant::BranchAvoiding).as_slice(),
            expected.as_slice(),
            "parallel branch-avoiding SV diverged at {threads} threads"
        );
    }
}

fn assert_parallel_bfs_matches_sequential(graph: &CsrGraph, root: u32) {
    let expected = bfs_distances_reference(graph, root);
    assert_eq!(bfs_branch_based(graph, root).distances(), &expected[..]);
    assert_eq!(bfs_branch_avoiding(graph, root).distances(), &expected[..]);
    let seq_diropt = bfs_direction_optimizing(graph, root, DirectionConfig::default());
    assert_eq!(seq_diropt.distances(), &expected[..]);
    for threads in THREAD_COUNTS {
        assert_eq!(
            par_bfs(graph, root, threads, Variant::BranchBased).distances(),
            &expected[..],
            "parallel branch-based BFS diverged at {threads} threads"
        );
        assert_eq!(
            par_bfs(graph, root, threads, Variant::BranchAvoiding).distances(),
            &expected[..],
            "parallel branch-avoiding BFS diverged at {threads} threads"
        );
        assert_eq!(
            par_dir_bfs(graph, root, threads, DirectionConfig::default())
                .result
                .distances(),
            seq_diropt.distances(),
            "parallel direction-optimizing BFS diverged at {threads} threads"
        );
    }
}

#[test]
fn suite_graphs_cross_validate_at_every_thread_count() {
    for sg in benchmark_suite(SuiteScale::Small, 42) {
        assert_parallel_sv_matches_sequential(&sg.graph);
        assert_parallel_bfs_matches_sequential(&sg.graph, 0);
        // Partition sanity against the union-find reference.
        let expected = connected_components_union_find(&sg.graph);
        assert_eq!(
            par_sv(&sg.graph, 8, Variant::BranchAvoiding).canonical(),
            expected
        );
    }
}

/// 1e-9 tolerance, scaled by magnitude: sequential (push-style) and
/// parallel (pull-style) back-sweeps sum the same dependencies in
/// different orders, so agreement is up to floating-point reassociation.
fn assert_scores_close(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        let tolerance = 1e-9 * x.abs().max(y.abs()).max(1.0);
        assert!(
            (x - y).abs() < tolerance,
            "{context}: vertex {i}: {x} vs {y}"
        );
    }
}

#[test]
fn bc_suite_graphs_cross_validate_at_every_thread_count() {
    // Full all-sources Brandes on the suite stand-ins is quadratic in the
    // graph size, so the suite check accumulates a fixed source sample and
    // compares against the sequential partial accumulation; full-run
    // equivalence is covered on generator graphs below.
    let sources = [0u32, 3, 101];
    for sg in benchmark_suite(SuiteScale::Small, 42) {
        let expected = betweenness_centrality_sources(&sg.graph, &sources);
        for threads in THREAD_COUNTS {
            for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
                let scores = par_bc(&sg.graph, Some(&sources), threads, variant);
                assert_scores_close(
                    &scores,
                    &expected,
                    &format!("{} at {threads} threads, {variant:?}", sg.name()),
                );
            }
        }
    }
}

#[test]
fn bc_full_scores_match_sequential_brandes() {
    let graphs = [
        relabel_random(&barabasi_albert(250, 2, 5), 3),
        relabel_random(&erdos_renyi_gnm(180, 420, 17), 8), // has isolated vertices
    ];
    for g in &graphs {
        let expected = betweenness_centrality(g);
        for threads in THREAD_COUNTS {
            for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
                let scores = par_bc(g, None, threads, variant);
                assert_scores_close(
                    &scores,
                    &expected,
                    &format!("{threads} threads, {variant:?}"),
                );
            }
        }
    }
}

#[test]
fn bc_scores_are_bit_deterministic_across_threads() {
    // The pull-style back-sweep computes every dependency from a fixed
    // neighbour order, so scores are bit-identical across thread counts,
    // executors and repeats — not merely within tolerance.
    let g = relabel_random(&barabasi_albert(500, 3, 29), 12);
    let sources: Vec<u32> = (0..16).collect();
    let reference = par_bc(&g, Some(&sources), 1, Variant::BranchAvoiding);
    for threads in THREAD_COUNTS {
        for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
            let scores = par_bc(&g, Some(&sources), threads, variant);
            for (a, b) in reference.iter().zip(scores.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads, {variant:?}");
            }
        }
    }
}

fn assert_parallel_kcore_matches_sequential(graph: &CsrGraph) {
    let expected = kcore_peeling(graph);
    for threads in THREAD_COUNTS {
        for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
            assert_eq!(
                par_kcore(graph, threads, variant).as_slice(),
                expected.as_slice(),
                "parallel {variant:?} k-core diverged at {threads} threads"
            );
        }
    }
}

fn assert_parallel_sssp_matches_sequential(graph: &CsrGraph, source: u32) {
    let expected = sssp_unit_delta_stepping(graph, source);
    assert_eq!(
        expected.distances(),
        &bfs_distances_reference(graph, source)[..],
        "sequential delta-stepping diverged from the BFS reference"
    );
    for threads in THREAD_COUNTS {
        for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
            let par = par_sssp(graph, source, threads, variant);
            assert_eq!(
                par.distances(),
                expected.distances(),
                "parallel {variant:?} SSSP diverged at {threads} threads"
            );
            assert_eq!(
                par.phases(),
                expected.phases(),
                "phase count diverged at {threads} threads ({variant:?})"
            );
        }
    }
}

#[test]
fn kcore_suite_graphs_cross_validate_at_every_thread_count() {
    for sg in benchmark_suite(SuiteScale::Small, 42) {
        assert_parallel_kcore_matches_sequential(&sg.graph);
    }
}

#[test]
fn kcore_engine_edge_cases() {
    use branch_avoiding_graphs::graph::GraphBuilder;
    // Empty graph, single vertex, isolated vertices only, and several
    // disconnected components of different degeneracies.
    let shapes = vec![
        GraphBuilder::undirected(0).build(),
        GraphBuilder::undirected(1).build(),
        GraphBuilder::undirected(6).build(),
        GraphBuilder::undirected(10)
            .add_edges([
                (0, 1),
                (1, 2),
                (2, 0), // triangle: coreness 2
                (3, 4), // edge: coreness 1
                (5, 6),
                (6, 7),
                (7, 5),
                (5, 8),
            ])
            .build(),
    ];
    for g in &shapes {
        assert_parallel_kcore_matches_sequential(g);
    }
    // Spot-check the disconnected decomposition directly.
    let cores = par_kcore(&shapes[3], 2, Variant::BranchAvoiding);
    assert_eq!(cores.as_slice(), &[2, 2, 2, 1, 1, 2, 2, 2, 1, 0]);
}

#[test]
fn kcore_runs_are_deterministic_across_repeats() {
    let g = relabel_random(&barabasi_albert(3_000, 3, 37), 6);
    for threads in THREAD_COUNTS {
        let first = par_kcore(&g, threads, Variant::BranchAvoiding);
        for _ in 0..3 {
            assert_eq!(
                par_kcore(&g, threads, Variant::BranchAvoiding).as_slice(),
                first.as_slice()
            );
        }
    }
}

#[test]
fn sssp_suite_graphs_cross_validate_at_every_thread_count() {
    for sg in benchmark_suite(SuiteScale::Small, 42) {
        assert_parallel_sssp_matches_sequential(&sg.graph, 0);
    }
}

#[test]
fn sssp_engine_edge_cases() {
    use branch_avoiding_graphs::graph::GraphBuilder;
    let shapes = vec![
        GraphBuilder::undirected(1).build(),
        GraphBuilder::undirected(5).build(), // all isolated
        GraphBuilder::undirected(8)
            .add_edges([(0, 1), (1, 2), (4, 5), (5, 6), (6, 7)])
            .build(), // disconnected components
    ];
    for g in &shapes {
        for source in 0..g.num_vertices() as u32 {
            assert_parallel_sssp_matches_sequential(g, source);
        }
    }
    // Out-of-range sources settle nothing at every thread count, like the
    // sequential reference and the BFS kernels.
    let g = &shapes[2];
    assert_eq!(sssp_unit_delta_stepping(g, 99).reached_count(), 0);
    for threads in THREAD_COUNTS {
        let run = par_sssp(g, 99, threads, Variant::BranchAvoiding);
        assert_eq!(run.reached_count(), 0);
        assert_eq!(run.phases(), 0);
    }
    // Empty graph: nothing to settle, no phases.
    let empty = GraphBuilder::undirected(0).build();
    let run = par_sssp(&empty, 0, 2, Variant::BranchAvoiding);
    assert_eq!(run.distances().len(), 0);
    assert_eq!(run.phases(), 0);
}

/// Δ widths the weighted cross-validation sweeps: degenerate (1), a real
/// light/heavy split (4) and all-light (32, the maximum uniform weight).
const WSSSP_DELTAS: [u32; 3] = [1, 4, 32];

fn assert_parallel_wsssp_matches_dijkstra(graph: &WeightedCsrGraph, source: u32) {
    let expected = sssp_dijkstra(graph, source);
    assert_eq!(
        expected.distances(),
        &bellman_ford_reference(graph, source)[..],
        "Dijkstra diverged from the Bellman-Ford ground truth"
    );
    for delta in WSSSP_DELTAS {
        assert_eq!(
            sssp_delta_stepping(graph, source, delta).distances(),
            expected.distances(),
            "sequential weighted delta-stepping diverged at delta {delta}"
        );
        for threads in THREAD_COUNTS {
            for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
                let par = par_wsssp(graph, source, delta, threads, variant);
                assert_eq!(
                    par.distances(),
                    expected.distances(),
                    "parallel {variant:?} weighted SSSP diverged at {threads} threads, \
                     delta {delta}"
                );
            }
        }
    }
}

#[test]
fn wsssp_suite_graphs_cross_validate_at_every_thread_count() {
    for sg in benchmark_suite(SuiteScale::Small, 42) {
        // The `bga sssp --weights uniform` assignment: 1..=32, seed 42.
        let wg = uniform_weights(&sg.graph, 32, 42);
        assert_parallel_wsssp_matches_dijkstra(&wg, 0);
    }
}

#[test]
fn wsssp_engine_edge_cases() {
    use branch_avoiding_graphs::graph::GraphBuilder;
    let shapes = vec![
        unit_weights(&GraphBuilder::undirected(0).build()), // empty graph
        unit_weights(&GraphBuilder::undirected(1).build()), // single vertex
        unit_weights(&GraphBuilder::undirected(5).build()), // all isolated
        // Disconnected weighted components.
        uniform_weights(
            &GraphBuilder::undirected(8)
                .add_edges([(0, 1), (1, 2), (4, 5), (5, 6), (6, 7)])
                .build(),
            16,
            3,
        ),
    ];
    for g in &shapes {
        for source in 0..g.num_vertices() as u32 {
            assert_parallel_wsssp_matches_dijkstra(g, source);
        }
    }
    // Out-of-range sources settle nothing at every thread count.
    let g = &shapes[3];
    assert_eq!(sssp_dijkstra(g, 99).reached_count(), 0);
    for threads in THREAD_COUNTS {
        let run = par_wsssp(g, 99, 4, threads, Variant::BranchAvoiding);
        assert_eq!(run.reached_count(), 0);
        assert_eq!(run.phases(), 0);
    }
    // Zero weights are forbidden at every construction seam.
    assert!(WeightedCsrGraph::from_parts(
        GraphBuilder::undirected(2).add_edge(0, 1).build(),
        vec![0, 0]
    )
    .is_err());
    assert!(
        branch_avoiding_graphs::graph::io::read_weighted_edge_list_str("0 1 0\n").is_err(),
        "weighted edge-list reader must reject zero weights"
    );
    assert!(
        branch_avoiding_graphs::graph::io::read_weighted_metis_str("2 1 1\n2 0\n1 0\n").is_err(),
        "weighted METIS reader must reject zero weights"
    );
}

#[test]
fn wsssp_phase_structure_is_deterministic_across_threads_and_repeats() {
    let wg = relabel_random_weighted(&uniform_weights(&barabasi_albert(2_000, 3, 13), 24, 5), 8);
    for delta in WSSSP_DELTAS {
        let reference =
            run_sssp_weighted(&wg, 0, delta, Variant::BranchAvoiding, &instrumented(1)).0;
        for threads in THREAD_COUNTS {
            for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
                for _ in 0..2 {
                    let run = run_sssp_weighted(&wg, 0, delta, variant, &instrumented(threads)).0;
                    assert_eq!(
                        run.result.distances(),
                        reference.result.distances(),
                        "{variant:?} at {threads} threads, delta {delta}"
                    );
                    assert_eq!(run.result.phases(), reference.result.phases());
                    assert_eq!(run.buckets_settled, reference.buckets_settled);
                    assert_eq!(run.heavy_phases, reference.heavy_phases);
                }
            }
        }
    }
}

#[test]
fn parallel_runs_are_deterministic_across_repeats() {
    let g = relabel_random(&barabasi_albert(3_000, 3, 11), 4);
    for threads in THREAD_COUNTS {
        let first_sv = par_sv(&g, threads, Variant::BranchAvoiding);
        let first_bfs = par_bfs(&g, 0, threads, Variant::BranchAvoiding);
        for _ in 0..3 {
            assert_eq!(
                par_sv(&g, threads, Variant::BranchAvoiding).as_slice(),
                first_sv.as_slice()
            );
            assert_eq!(
                par_bfs(&g, 0, threads, Variant::BranchAvoiding).distances(),
                first_bfs.distances()
            );
        }
    }
}

#[test]
fn direction_optimizing_strategies_cross_validate() {
    // Every pinned strategy and the auto heuristic produce reference
    // distances at every thread count, and the auto heuristic picks the
    // same per-level directions as the sequential kernel (frontier sizes
    // are deterministic, so switching is too).
    let g = relabel_random(&barabasi_albert(2_500, 4, 31), 9);
    let expected = bfs_distances_reference(&g, 0);
    for config in [
        DirectionConfig::default(),
        DirectionConfig::always_top_down(),
        DirectionConfig::always_bottom_up(),
    ] {
        let seq = bfs_direction_optimizing(&g, 0, config);
        assert_eq!(seq.distances(), &expected[..]);
        for threads in THREAD_COUNTS {
            let par = par_dir_bfs(&g, 0, threads, config);
            assert_eq!(
                par.result.distances(),
                &expected[..],
                "diverged at {threads} threads with {config:?}"
            );
            assert_eq!(par.result.level_count(), seq.level_count());
        }
    }
    // The default thresholds actually exercise both directions on this
    // power-law graph — otherwise the test above proves less than it says.
    let run = par_dir_bfs(&g, 0, 2, DirectionConfig::default());
    assert!(run.bottom_up_levels() > 0);
    assert!(run.bottom_up_levels() < run.directions.len());
}

#[test]
fn instrumented_parallel_counters_merge_consistently() {
    let g = relabel_random(&barabasi_albert(2_000, 3, 9), 1);
    for threads in THREAD_COUNTS {
        let sv = run_components(&g, Variant::BranchAvoiding, &instrumented(threads)).0;
        // Every sweep touches every edge slot exactly once, regardless of
        // how the work was chunked across threads.
        for step in &sv.counters.steps {
            assert_eq!(step.edges_traversed as usize, g.num_edge_slots());
        }
        assert_eq!(sv.labels.canonical(), connected_components_union_find(&g));

        let sv_based = run_components(&g, Variant::BranchBased, &instrumented(threads)).0;
        assert_eq!(sv_based.labels.as_slice(), sv.labels.as_slice());
        // The concurrent contrast the paper predicts: branch-based executes
        // strictly more branches, branch-avoiding strictly more stores.
        let based_totals = sv_based.counters.total();
        let avoiding_totals = sv.counters.total();
        assert!(based_totals.branches > avoiding_totals.branches);
        assert!(avoiding_totals.stores > based_totals.stores);

        let bfs = run_bfs(
            &g,
            0,
            BfsStrategy::Plain(Variant::BranchBased),
            &instrumented(threads),
        )
        .0;
        let per_level_vertices: u64 = bfs
            .counters
            .steps
            .iter()
            .map(|s| s.vertices_processed)
            .sum();
        assert_eq!(per_level_vertices as usize, bfs.result.reached_count());
        assert_eq!(bfs.counters.num_steps(), bfs.result.level_count());

        let bfs_avoiding = run_bfs(
            &g,
            0,
            BfsStrategy::Plain(Variant::BranchAvoiding),
            &instrumented(threads),
        )
        .0;
        assert_eq!(bfs_avoiding.result.distances(), bfs.result.distances());
    }
}

/// `Variant::Auto` is runtime *selection*, not a third algorithm: every
/// kernel samples a branch-based prefix, switches (or stays) at a phase
/// boundary, and must land on exactly the results both static disciplines
/// produce. Grain 1 maximises interleavings; threads 1, 2 and 8 cover the
/// sequential-degenerate, contended and oversubscribed regimes.
#[test]
fn auto_variant_is_bit_identical_to_the_static_variants() {
    let g = relabel_random(&barabasi_albert(600, 3, 7), 5);
    let wg = uniform_weights(&g, 24, 11);
    let sources: Vec<u32> = (0..6).collect();
    let grain1 = |threads: usize| config(threads).grain(1);
    for threads in THREAD_COUNTS {
        let auto_sv = run_components(&g, Variant::Auto, &grain1(threads)).0.labels;
        let auto_bfs = run_bfs(&g, 0, BfsStrategy::Plain(Variant::Auto), &grain1(threads))
            .0
            .result;
        let auto_kcore = run_kcore(&g, Variant::Auto, &grain1(threads)).0.cores;
        let auto_sssp = run_sssp_unit(&g, 0, Variant::Auto, &grain1(threads))
            .0
            .result;
        let auto_wsssp = run_sssp_weighted(&wg, 0, 4, Variant::Auto, &grain1(threads))
            .0
            .result;
        let auto_bc = run_betweenness(&g, Variant::Auto, Some(&sources), &grain1(threads))
            .0
            .scores;
        for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
            let context = format!("auto vs {variant:?} at {threads} threads");
            assert_eq!(
                auto_sv.as_slice(),
                run_components(&g, variant, &grain1(threads))
                    .0
                    .labels
                    .as_slice(),
                "cc: {context}"
            );
            assert_eq!(
                auto_bfs.distances(),
                run_bfs(&g, 0, BfsStrategy::Plain(variant), &grain1(threads))
                    .0
                    .result
                    .distances(),
                "bfs: {context}"
            );
            assert_eq!(
                auto_kcore.as_slice(),
                run_kcore(&g, variant, &grain1(threads)).0.cores.as_slice(),
                "kcore: {context}"
            );
            assert_eq!(
                auto_sssp.distances(),
                run_sssp_unit(&g, 0, variant, &grain1(threads))
                    .0
                    .result
                    .distances(),
                "sssp: {context}"
            );
            assert_eq!(
                auto_wsssp.distances(),
                run_sssp_weighted(&wg, 0, 4, variant, &grain1(threads))
                    .0
                    .result
                    .distances(),
                "wsssp: {context}"
            );
            // The pull-style back-sweep is bit-deterministic, so auto bc
            // scores match to the bit, not merely within tolerance.
            let static_bc = run_betweenness(&g, variant, Some(&sources), &grain1(threads))
                .0
                .scores;
            for (i, (a, b)) in auto_bc.iter().zip(static_bc.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "bc vertex {i}: {context}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The advisor's crossover rule is pure integer arithmetic: the same
    /// tally stream always yields the same single decision, emitted on
    /// exactly the configured phase, and the choice agrees with the
    /// closed-form rule applied to the accumulated prefix.
    #[test]
    fn advisor_decisions_are_a_pure_function_of_the_tally_stream(
        stream in proptest::collection::vec((0u64..1u64 << 40, 0u64..1u64 << 40), 1..12),
        sample_phases in 1usize..6,
    ) {
        use branch_avoiding_graphs::perfmodel::advisor::{
            branch_avoiding_wins, predicted_mispredictions, AdvisorConfig, ChosenVariant,
            VariantAdvisor,
        };
        let config = AdvisorConfig { sample_phases, ..AdvisorConfig::default() };
        let feed = || {
            let mut advisor = VariantAdvisor::new(config);
            let mut decisions = Vec::new();
            for (index, (edges, updates)) in stream.iter().enumerate() {
                if let Some(decision) = advisor.record_phase(*edges, *updates) {
                    decisions.push((index, decision));
                }
            }
            decisions
        };
        let first = feed();
        prop_assert_eq!(&first, &feed(), "same stream, different decisions");
        if stream.len() >= sample_phases {
            prop_assert_eq!(first.len(), 1, "decision must fire exactly once");
            let (index, decision) = first[0];
            prop_assert_eq!(index, sample_phases - 1, "decision fired on the wrong phase");
            let edges: u64 = stream[..sample_phases].iter().map(|(e, _)| e).sum();
            let updates: u64 = stream[..sample_phases].iter().map(|(_, u)| u).sum();
            prop_assert_eq!(decision.edges, edges);
            prop_assert_eq!(decision.updates, updates);
            prop_assert_eq!(
                decision.mispredictions,
                predicted_mispredictions(edges, updates)
            );
            let expected = if branch_avoiding_wins(
                edges,
                updates,
                config.miss_cost,
                config.atomic_cost,
            ) {
                ChosenVariant::BranchAvoiding
            } else {
                ChosenVariant::BranchBased
            };
            prop_assert_eq!(decision.choice, expected);
        } else {
            prop_assert!(first.is_empty(), "decided before the sampling window filled");
        }
    }

    /// Random sparse graphs with randomly permuted labels: parallel SV and
    /// BFS agree with the sequential kernels at 1, 2 and 8 threads.
    #[test]
    fn random_relabelled_graphs_cross_validate(
        n in 2usize..150,
        edge_factor in 0usize..5,
        seed in 0u64..1_000,
        relabel_seed in 0u64..1_000,
        root_pick in 0usize..1_000,
    ) {
        let m = (n * edge_factor / 2).min(n * (n - 1) / 2);
        let g = relabel_random(&erdos_renyi_gnm(n, m, seed), relabel_seed);
        assert_parallel_sv_matches_sequential(&g);
        assert_parallel_bfs_matches_sequential(&g, (root_pick % n) as u32);
    }

    /// Engine seam check: a `LevelLoop` driven directly with the public
    /// branch-avoiding kernel — grain 1, every direction policy — equals
    /// the sequential BFS on randomly relabelled generator graphs, and its
    /// recorded level bounds tile the discovery order level by level.
    #[test]
    fn engine_driven_bfs_equals_sequential_bfs(
        n in 2usize..120,
        edge_factor in 0usize..5,
        seed in 0u64..500,
        relabel_seed in 0u64..500,
    ) {
        use branch_avoiding_graphs::parallel::bfs::BranchAvoidingLevel;
        use branch_avoiding_graphs::parallel::{LevelLoop, TraversalState, WorkerPool};
        let m = (n * edge_factor / 2).min(n * (n - 1) / 2);
        let g = relabel_random(&erdos_renyi_gnm(n, m, seed), relabel_seed);
        let expected = bfs_distances_reference(&g, 0);
        let pool = WorkerPool::new(4);
        for config in [
            DirectionConfig::default(),
            DirectionConfig::always_top_down(),
            DirectionConfig::always_bottom_up(),
        ] {
            let state = TraversalState::new(g.num_vertices());
            let run = LevelLoop::new(&g, &pool, 1, config).run(&state, 0, &BranchAvoidingLevel::<false>);
            let distances = state.into_distances();
            prop_assert_eq!(&distances[..], &expected[..]);
            let mut covered = 0usize;
            for (level, bound) in run.level_bounds.iter().enumerate() {
                prop_assert_eq!(bound.start, covered);
                covered = bound.end;
                for &v in &run.order[bound.clone()] {
                    prop_assert_eq!(distances[v as usize], level as u32);
                }
            }
            prop_assert_eq!(covered, run.order.len());
            // The boundaries the engine records live are exactly the ones
            // `BfsResult::level_bounds` recovers from the finished result.
            let result = branch_avoiding_graphs::kernels::bfs::BfsResult::new(
                distances,
                run.order.clone(),
            );
            prop_assert_eq!(result.level_bounds(), run.level_bounds);
        }
    }

    /// Random sparse graphs with randomly permuted labels: parallel k-core
    /// numbers (both peel disciplines) agree with sequential bucket
    /// peeling at 1, 2 and 8 threads.
    #[test]
    fn kcore_random_relabelled_graphs_cross_validate(
        n in 1usize..120,
        edge_factor in 0usize..6,
        seed in 0u64..1_000,
        relabel_seed in 0u64..1_000,
    ) {
        let m = (n * edge_factor / 2).min(n * (n - 1) / 2);
        let g = relabel_random(&erdos_renyi_gnm(n, m, seed), relabel_seed);
        let expected = kcore_peeling(&g);
        for threads in THREAD_COUNTS {
            for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
                prop_assert_eq!(
                    par_kcore(&g, threads, variant).as_slice(),
                    expected.as_slice(),
                    "{:?} at {} threads", variant, threads
                );
            }
        }
    }

    /// Random sparse graphs with randomly permuted labels: sequential
    /// delta-stepping settles reference distances for every bucket width,
    /// and the parallel client agrees at 1, 2 and 8 threads in both
    /// relaxation disciplines.
    #[test]
    fn sssp_random_relabelled_graphs_cross_validate(
        n in 1usize..120,
        edge_factor in 0usize..6,
        seed in 0u64..1_000,
        relabel_seed in 0u64..1_000,
        root_pick in 0usize..1_000,
    ) {
        let m = (n * edge_factor / 2).min(n * (n - 1) / 2);
        let g = relabel_random(&erdos_renyi_gnm(n, m, seed), relabel_seed);
        let source = (root_pick % n) as u32;
        let expected = bfs_distances_reference(&g, source);
        for delta in [1u32, 2, 5] {
            prop_assert_eq!(
                sssp_unit_delta_stepping_with_delta(&g, source, delta).distances(),
                &expected[..],
                "sequential delta {} diverged", delta
            );
        }
        for threads in THREAD_COUNTS {
            for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
                prop_assert_eq!(
                    par_sssp(&g, source, threads, variant).distances(),
                    &expected[..],
                    "{:?} at {} threads", variant, threads
                );
            }
        }
    }

    /// Random sparse graphs with random positive weights and randomly
    /// permuted labels: sequential weighted delta-stepping settles
    /// Dijkstra's distances for every bucket width, and the parallel
    /// bucket-loop client agrees at 1, 2 and 8 threads in both relaxation
    /// disciplines.
    #[test]
    fn wsssp_random_relabelled_graphs_cross_validate(
        n in 1usize..100,
        edge_factor in 0usize..6,
        seed in 0u64..1_000,
        weight_seed in 0u64..1_000,
        relabel_seed in 0u64..1_000,
        root_pick in 0usize..1_000,
    ) {
        let m = (n * edge_factor / 2).min(n * (n - 1) / 2);
        let g = relabel_random_weighted(
            &uniform_weights(&erdos_renyi_gnm(n, m, seed), 24, weight_seed),
            relabel_seed,
        );
        let source = (root_pick % n) as u32;
        let expected = sssp_dijkstra(&g, source);
        prop_assert_eq!(
            expected.distances(),
            &bellman_ford_reference(&g, source)[..],
            "Dijkstra diverged from Bellman-Ford"
        );
        for delta in WSSSP_DELTAS {
            prop_assert_eq!(
                sssp_delta_stepping(&g, source, delta).distances(),
                expected.distances(),
                "sequential delta {} diverged", delta
            );
            for threads in THREAD_COUNTS {
                for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
                    prop_assert_eq!(
                        par_wsssp(&g, source, delta, threads, variant)
                            .distances(),
                        expected.distances(),
                        "{:?} at {} threads, delta {}", variant, threads, delta
                    );
                }
            }
        }
    }

    /// The parallel branch-avoiding BFS queue never holds duplicates.
    #[test]
    fn parallel_branch_avoiding_queue_is_duplicate_free(
        n in 2usize..120,
        edge_factor in 1usize..5,
        seed in 0u64..500,
    ) {
        let m = (n * edge_factor / 2).min(n * (n - 1) / 2);
        let g = erdos_renyi_gnm(n, m, seed);
        for threads in THREAD_COUNTS {
            let result = par_bfs(&g, 0, threads, Variant::BranchAvoiding);
            let mut order = result.visit_order().to_vec();
            let reached = result.reached_count();
            order.sort_unstable();
            order.dedup();
            prop_assert_eq!(order.len(), reached);
        }
    }
}
