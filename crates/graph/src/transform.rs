//! Graph transformations: vertex relabelling.
//!
//! Generators like the mesh builders assign vertex ids in a sweep order that
//! is artificially friendly to label-propagation algorithms (the minimum id
//! sits in a corner and every vertex has a lower-numbered neighbour on the
//! path back to it, so Shiloach-Vishkin converges in a couple of sweeps).
//! Real-world DIMACS graphs have no such alignment. [`relabel_random`]
//! applies a seeded random permutation to the vertex ids so the synthetic
//! stand-ins exhibit iteration counts comparable to the paper's.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use crate::weighted::{WeightedCsrGraph, WeightedGraphBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Returns an isomorphic copy of `graph` with vertex ids permuted by a
/// seeded random permutation. The edge set (up to relabelling), vertex
/// count, degree multiset and all distance properties are preserved.
pub fn relabel_random(graph: &CsrGraph, seed: u64) -> CsrGraph {
    let n = graph.num_vertices();
    let mut permutation: Vec<VertexId> = (0..n as VertexId).collect();
    permutation.shuffle(&mut StdRng::seed_from_u64(seed));
    relabel_with(graph, &permutation)
}

/// Relabels `graph` with an explicit permutation: old vertex `v` becomes
/// `permutation[v]`. Panics if `permutation` is not a permutation of
/// `0..|V|`.
pub fn relabel_with(graph: &CsrGraph, permutation: &[VertexId]) -> CsrGraph {
    let n = graph.num_vertices();
    assert_eq!(permutation.len(), n, "permutation length must equal |V|");
    let mut seen = vec![false; n];
    for &p in permutation {
        assert!(
            (p as usize) < n && !seen[p as usize],
            "relabelling map is not a permutation of 0..|V|"
        );
        seen[p as usize] = true;
    }

    let mut builder = if graph.is_undirected() {
        GraphBuilder::undirected(n)
    } else {
        GraphBuilder::directed(n)
    };
    builder = builder.keep_self_loops(true);
    if graph.is_undirected() {
        for (u, v) in graph.edges() {
            builder.push_edge(permutation[u as usize], permutation[v as usize]);
        }
    } else {
        for (u, v) in graph.edge_slots() {
            builder.push_edge(permutation[u as usize], permutation[v as usize]);
        }
    }
    builder.build()
}

/// Returns an isomorphic copy of a weighted graph with vertex ids permuted
/// by a seeded random permutation; every edge keeps its weight, so all
/// shortest-path distances are preserved up to the relabelling.
pub fn relabel_random_weighted(graph: &WeightedCsrGraph, seed: u64) -> WeightedCsrGraph {
    let n = graph.num_vertices();
    let mut permutation: Vec<VertexId> = (0..n as VertexId).collect();
    permutation.shuffle(&mut StdRng::seed_from_u64(seed));
    relabel_with_weighted(graph, &permutation)
}

/// Relabels a weighted graph with an explicit permutation, preserving
/// weights. Panics if `permutation` is not a permutation of `0..|V|` (the
/// same contract as [`relabel_with`]).
pub fn relabel_with_weighted(
    graph: &WeightedCsrGraph,
    permutation: &[VertexId],
) -> WeightedCsrGraph {
    let n = graph.num_vertices();
    assert_eq!(permutation.len(), n, "permutation length must equal |V|");
    let mut seen = vec![false; n];
    for &p in permutation {
        assert!(
            (p as usize) < n && !seen[p as usize],
            "relabelling map is not a permutation of 0..|V|"
        );
        seen[p as usize] = true;
    }
    let mut builder = if graph.csr().is_undirected() {
        WeightedGraphBuilder::undirected(n)
    } else {
        WeightedGraphBuilder::directed(n)
    };
    for (u, v, w) in graph.edges_weighted() {
        builder.push_edge(permutation[u as usize], permutation[v as usize], w);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::degree_stats;
    use crate::generators::{grid_2d, path_graph, MeshStencil};
    use crate::properties::{connected_component_count, pseudo_diameter};

    #[test]
    fn relabelling_preserves_structure() {
        let g = grid_2d(7, 9, MeshStencil::Moore);
        let r = relabel_random(&g, 99);
        assert_eq!(g.num_vertices(), r.num_vertices());
        assert_eq!(g.num_edges(), r.num_edges());
        assert_eq!(connected_component_count(&g), connected_component_count(&r));
        assert_eq!(pseudo_diameter(&g, 0), pseudo_diameter(&r, 0));
        let a = degree_stats(&g);
        let b = degree_stats(&r);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        assert_eq!(a.mean, b.mean);
    }

    #[test]
    fn relabelling_is_deterministic_per_seed_and_changes_ids() {
        let g = path_graph(100);
        assert_eq!(relabel_random(&g, 5), relabel_random(&g, 5));
        assert_ne!(relabel_random(&g, 5), g);
        assert_ne!(relabel_random(&g, 5), relabel_random(&g, 6));
    }

    #[test]
    fn identity_permutation_is_a_no_op() {
        let g = path_graph(20);
        let identity: Vec<u32> = (0..20).collect();
        assert_eq!(relabel_with(&g, &identity), g);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_non_permutations() {
        let g = path_graph(4);
        relabel_with(&g, &[0, 0, 1, 2]);
    }

    #[test]
    fn weighted_relabelling_preserves_weights_up_to_the_permutation() {
        use crate::weighted::uniform_weights;
        let g = uniform_weights(&grid_2d(5, 6, MeshStencil::VonNeumann), 16, 3);
        let r = relabel_random_weighted(&g, 77);
        assert_eq!(g.num_edges(), r.num_edges());
        // Same weight multiset, same per-seed determinism.
        let mut a: Vec<_> = g.edges_weighted().map(|(_, _, w)| w).collect();
        let mut b: Vec<_> = r.edges_weighted().map(|(_, _, w)| w).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(relabel_random_weighted(&g, 77), r);
        // Identity permutation round-trips exactly.
        let identity: Vec<u32> = (0..g.num_vertices() as u32).collect();
        assert_eq!(relabel_with_weighted(&g, &identity), g);
        // Per-edge check through an explicit small permutation.
        let small = crate::weighted::WeightedGraphBuilder::undirected(3)
            .add_edges([(0, 1, 5), (1, 2, 8)])
            .build();
        let relabelled = relabel_with_weighted(&small, &[2, 0, 1]);
        assert_eq!(relabelled.weight_of_edge(2, 0), Some(5));
        assert_eq!(relabelled.weight_of_edge(0, 1), Some(8));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn weighted_relabelling_rejects_non_permutations() {
        let g = crate::weighted::unit_weights(&path_graph(4));
        relabel_with_weighted(&g, &[0, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn rejects_wrong_length() {
        let g = path_graph(4);
        relabel_with(&g, &[0, 1, 2]);
    }
}
