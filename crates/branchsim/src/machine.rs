//! The instrumented execution machine.
//!
//! The paper measures its hand-written assembly kernels with hardware
//! performance counters. This reproduction substitutes a software
//! *instrumentation machine*: kernels are written against [`ExecMachine`],
//! calling [`ExecMachine::load`], [`ExecMachine::store`],
//! [`ExecMachine::branch`], [`ExecMachine::cond_move`] and
//! [`ExecMachine::alu`] at the points where the assembly version would issue
//! the corresponding instruction. The machine counts every event exactly and
//! drives a pluggable [`PredictorModel`] to attribute mispredictions, so the
//! per-iteration counter series of Figures 4, 5, 7 and 8 can be regenerated
//! deterministically.

use crate::counters::PerfCounters;
use crate::predictor::{Outcome, PredictorModel, TwoBitPredictor};
use crate::site::BranchSite;

/// Instrumented machine: a counter block plus a branch-predictor model.
///
/// The generic parameter defaults to the paper's 2-bit predictor; the
/// predictor ablation instantiates the same kernels with other models.
#[derive(Clone, Debug)]
pub struct ExecMachine<P: PredictorModel = TwoBitPredictor> {
    counters: PerfCounters,
    predictor: P,
}

impl ExecMachine<TwoBitPredictor> {
    /// Machine with the paper's default 2-bit predictor.
    pub fn new() -> Self {
        ExecMachine::with_predictor(TwoBitPredictor::new())
    }
}

impl Default for ExecMachine<TwoBitPredictor> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: PredictorModel> ExecMachine<P> {
    /// Machine with a custom predictor model.
    pub fn with_predictor(predictor: P) -> Self {
        ExecMachine {
            counters: PerfCounters::zero(),
            predictor,
        }
    }

    /// Current counter values (cumulative since construction / last reset).
    #[inline]
    pub fn counters(&self) -> PerfCounters {
        self.counters
    }

    /// Snapshot for later use with [`PerfCounters::delta_since`].
    #[inline]
    pub fn snapshot(&self) -> PerfCounters {
        self.counters
    }

    /// Access to the predictor (e.g. to inspect per-site state in tests).
    pub fn predictor(&self) -> &P {
        &self.predictor
    }

    /// Resets counters and predictor state.
    pub fn reset(&mut self) {
        self.counters = PerfCounters::zero();
        self.predictor.reset();
    }

    /// Counts a memory load and passes the loaded value through.
    ///
    /// Written as a pass-through so kernel code reads naturally:
    /// `let cu = machine.load(ccid[u as usize]);`
    #[inline]
    pub fn load<T>(&mut self, value: T) -> T {
        self.counters.loads += 1;
        self.counters.instructions += 1;
        value
    }

    /// Counts a memory store and performs it.
    #[inline]
    pub fn store<T>(&mut self, slot: &mut T, value: T) {
        self.counters.stores += 1;
        self.counters.instructions += 1;
        *slot = value;
    }

    /// Counts `n` generic ALU / bookkeeping instructions (index arithmetic,
    /// compares feeding conditional moves, register moves).
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.counters.instructions += n;
    }

    /// Executes a conditional branch at `site` with actual direction
    /// `condition`, updating branch and misprediction counters, and returns
    /// the condition so it can be used directly in Rust control flow:
    ///
    /// ```ignore
    /// if machine.branch(SV_IF, cu <= cv) {
    ///     // taken path
    /// }
    /// ```
    #[inline]
    pub fn branch(&mut self, site: BranchSite, condition: bool) -> bool {
        self.counters.branches += 1;
        self.counters.instructions += 1;
        let correct = self.predictor.record(site, Outcome::from_bool(condition));
        if !correct {
            self.counters.branch_mispredictions += 1;
        }
        condition
    }

    /// Conditional move: `*dst = src` iff `condition`, counted as a single
    /// predicated instruction with **no** branch and no misprediction. This
    /// is the `CMOVcc` the paper's branch-avoiding kernels rely on.
    #[inline]
    pub fn cond_move<T: Copy>(&mut self, condition: bool, dst: &mut T, src: T) {
        self.counters.conditional_moves += 1;
        self.counters.instructions += 1;
        // Branch-free select at the Rust level as well, mirroring the
        // generated cmov: both values are computed, the predicate picks one.
        *dst = if condition { src } else { *dst };
    }

    /// Conditional add: `*dst += delta` iff `condition` (the paper's
    /// `COND_ADD` used to advance the BFS queue length).
    #[inline]
    pub fn cond_add(&mut self, condition: bool, dst: &mut u64, delta: u64) {
        self.counters.conditional_moves += 1;
        self.counters.instructions += 1;
        *dst += if condition { delta } else { 0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::AlwaysTakenPredictor;

    const LOOP: BranchSite = BranchSite::new(0, "loop");

    #[test]
    fn load_store_and_alu_count() {
        let mut m = ExecMachine::new();
        let mut x = 0u32;
        let v = m.load(41u32);
        m.store(&mut x, v + 1);
        m.alu(3);
        assert_eq!(x, 42);
        let c = m.counters();
        assert_eq!(c.loads, 1);
        assert_eq!(c.stores, 1);
        assert_eq!(c.instructions, 1 + 1 + 3);
        assert_eq!(c.branches, 0);
    }

    #[test]
    fn branch_counts_and_returns_condition() {
        let mut m = ExecMachine::new();
        assert!(m.branch(LOOP, true));
        assert!(!m.branch(LOOP, false));
        let c = m.counters();
        assert_eq!(c.branches, 2);
        assert!(c.branch_mispredictions >= 1);
    }

    #[test]
    fn mispredictions_follow_the_predictor() {
        // With always-taken, only not-taken branches mispredict.
        let mut m = ExecMachine::with_predictor(AlwaysTakenPredictor::new());
        for _ in 0..5 {
            m.branch(LOOP, true);
        }
        m.branch(LOOP, false);
        assert_eq!(m.counters().branch_mispredictions, 1);
        assert_eq!(m.counters().branches, 6);
    }

    #[test]
    fn cond_move_applies_only_when_condition_holds() {
        let mut m = ExecMachine::new();
        let mut x = 10u32;
        m.cond_move(false, &mut x, 99);
        assert_eq!(x, 10);
        m.cond_move(true, &mut x, 99);
        assert_eq!(x, 99);
        let c = m.counters();
        assert_eq!(c.conditional_moves, 2);
        assert_eq!(c.branches, 0);
        assert_eq!(c.branch_mispredictions, 0);
    }

    #[test]
    fn cond_add_advances_conditionally() {
        let mut m = ExecMachine::new();
        let mut len = 0u64;
        m.cond_add(true, &mut len, 1);
        m.cond_add(false, &mut len, 1);
        m.cond_add(true, &mut len, 1);
        assert_eq!(len, 2);
        assert_eq!(m.counters().conditional_moves, 3);
    }

    #[test]
    fn snapshot_delta_isolates_an_iteration() {
        let mut m = ExecMachine::new();
        m.alu(5);
        let snap = m.snapshot();
        m.alu(2);
        m.branch(LOOP, true);
        let delta = m.counters().delta_since(&snap);
        assert_eq!(delta.instructions, 3);
        assert_eq!(delta.branches, 1);
    }

    #[test]
    fn reset_clears_counters_and_predictor() {
        let mut m = ExecMachine::new();
        for _ in 0..10 {
            m.branch(LOOP, true);
        }
        m.reset();
        assert_eq!(m.counters(), PerfCounters::zero());
        // After reset the first taken branch should mispredict again
        // (initial state predicts not-taken).
        m.branch(LOOP, true);
        assert_eq!(m.counters().branch_mispredictions, 1);
    }
}
