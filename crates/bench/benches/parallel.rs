//! Criterion wall-clock benches for the parallel kernels: branch-based
//! (CAS-loop) vs branch-avoiding (fetch-min) Shiloach-Vishkin, parallel
//! top-down and direction-optimizing BFS across thread counts,
//! sampled-source Brandes betweenness, k-core peeling, unit-weight SSSP
//! and weighted delta-stepping SSSP in both hooking disciplines, and the
//! persistent-pool vs per-sweep
//! `thread::scope` contrast on a high-diameter graph. This is the
//! strong-scaling companion to `bga experiment scaling` — the relative
//! ordering across hooking disciplines and the per-thread-count trend are
//! the point, not absolute numbers.

use bga_graph::generators::{grid_2d, MeshStencil};
use bga_graph::suite::{benchmark_suite, SuiteScale};
use bga_graph::{uniform_weights, CompressedCsrGraph, CompressedWeightedGraph};
use bga_kernels::bfs::direction_optimizing::DirectionConfig;
use bga_parallel::request::{
    run_betweenness, run_bfs, run_bfs_on, run_components, run_kcore, run_sssp_unit,
    run_sssp_weighted,
};
use bga_parallel::{BfsStrategy, RunConfig, ScopedExecutor, Variant, WorkerPool};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn cfg(threads: usize) -> RunConfig<'static> {
    RunConfig::new().threads(threads)
}

fn bench_parallel_sv(c: &mut Criterion) {
    let suite = benchmark_suite(SuiteScale::Small, 42);
    let mut group = c.benchmark_group("parallel_sv");
    group.sample_size(10);
    // coAuthorsDBLP stand-in: the power-law graph, where edge-balanced
    // chunking matters most.
    let sg = &suite[2];
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("branch_based", format!("{}x{threads}", sg.name())),
            &sg.graph,
            |b, g| b.iter(|| run_components(g, Variant::BranchBased, &cfg(threads))),
        );
        group.bench_with_input(
            BenchmarkId::new("branch_avoiding", format!("{}x{threads}", sg.name())),
            &sg.graph,
            |b, g| b.iter(|| run_components(g, Variant::BranchAvoiding, &cfg(threads))),
        );
    }
    group.finish();
}

fn bench_parallel_bfs(c: &mut Criterion) {
    let suite = benchmark_suite(SuiteScale::Small, 42);
    let mut group = c.benchmark_group("parallel_bfs");
    group.sample_size(10);
    // ldoor stand-in: the long-diameter mesh, many small frontiers.
    let sg = &suite[4];
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("branch_based", format!("{}x{threads}", sg.name())),
            &sg.graph,
            |b, g| {
                b.iter(|| {
                    run_bfs(
                        g,
                        0,
                        BfsStrategy::Plain(Variant::BranchBased),
                        &cfg(threads),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("branch_avoiding", format!("{}x{threads}", sg.name())),
            &sg.graph,
            |b, g| {
                b.iter(|| {
                    run_bfs(
                        g,
                        0,
                        BfsStrategy::Plain(Variant::BranchAvoiding),
                        &cfg(threads),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("direction_optimizing", format!("{}x{threads}", sg.name())),
            &sg.graph,
            |b, g| {
                b.iter(|| {
                    let strategy = BfsStrategy::DirectionOptimizing(DirectionConfig::default());
                    run_bfs(g, 0, strategy, &cfg(threads))
                })
            },
        );
    }
    group.finish();
}

/// Parallel Brandes betweenness over a fixed source sample: each source is
/// a full engine-driven BFS plus a reverse level sweep, so this measures
/// the traversal engine end to end (forward fan-out, level-bound
/// recording, pull-style dependency accumulation) in both hooking
/// disciplines.
fn bench_parallel_bc(c: &mut Criterion) {
    let suite = benchmark_suite(SuiteScale::Small, 42);
    let mut group = c.benchmark_group("parallel_bc");
    group.sample_size(10);
    // coAuthorsDBLP stand-in: short diameter, explosive levels.
    let sg = &suite[2];
    let sources: Vec<u32> = (0..8).collect();
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("branch_based", format!("{}x{threads}", sg.name())),
            &sg.graph,
            |b, g| {
                b.iter(|| run_betweenness(g, Variant::BranchBased, Some(&sources), &cfg(threads)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("branch_avoiding", format!("{}x{threads}", sg.name())),
            &sg.graph,
            |b, g| {
                b.iter(|| {
                    run_betweenness(g, Variant::BranchAvoiding, Some(&sources), &cfg(threads))
                })
            },
        );
    }
    group.finish();
}

/// Parallel k-core peeling: per-`k` seed sweeps plus cascade rounds over
/// atomic degree counters, in both decrement disciplines (unconditional
/// `fetch_sub` + predicated enqueue vs test-and-CAS). The power-law graph
/// has the deep core structure where the cascade actually iterates.
fn bench_parallel_kcore(c: &mut Criterion) {
    let suite = benchmark_suite(SuiteScale::Small, 42);
    let mut group = c.benchmark_group("parallel_kcore");
    group.sample_size(10);
    // coAuthorsDBLP stand-in: skewed degrees, non-trivial degeneracy.
    let sg = &suite[2];
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("branch_based", format!("{}x{threads}", sg.name())),
            &sg.graph,
            |b, g| b.iter(|| run_kcore(g, Variant::BranchBased, &cfg(threads))),
        );
        group.bench_with_input(
            BenchmarkId::new("branch_avoiding", format!("{}x{threads}", sg.name())),
            &sg.graph,
            |b, g| b.iter(|| run_kcore(g, Variant::BranchAvoiding, &cfg(threads))),
        );
    }
    group.finish();
}

/// Parallel unit-weight SSSP (delta-stepping degenerated onto the level
/// loop) in both relaxation disciplines, on the long-diameter mesh where
/// the engine runs many settling phases.
fn bench_parallel_sssp(c: &mut Criterion) {
    let suite = benchmark_suite(SuiteScale::Small, 42);
    let mut group = c.benchmark_group("parallel_sssp");
    group.sample_size(10);
    // ldoor stand-in: many small buckets, the frontier-flip regime.
    let sg = &suite[4];
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("branch_based", format!("{}x{threads}", sg.name())),
            &sg.graph,
            |b, g| b.iter(|| run_sssp_unit(g, 0, Variant::BranchBased, &cfg(threads))),
        );
        group.bench_with_input(
            BenchmarkId::new("branch_avoiding", format!("{}x{threads}", sg.name())),
            &sg.graph,
            |b, g| b.iter(|| run_sssp_unit(g, 0, Variant::BranchAvoiding, &cfg(threads))),
        );
    }
    group.finish();
}

/// Parallel weighted delta-stepping SSSP on the engine's bucket loop, in
/// both relaxation disciplines. Seeded uniform weights in 1..=32 with
/// Δ = 4 exercise the full machinery — light phases re-relaxed within a
/// bucket plus deferred heavy passes — on the power-law graph whose
/// skewed frontiers stress the per-pass chunker.
fn bench_parallel_sssp_weighted(c: &mut Criterion) {
    let suite = benchmark_suite(SuiteScale::Small, 42);
    let mut group = c.benchmark_group("parallel_sssp_weighted");
    group.sample_size(10);
    // coAuthorsDBLP stand-in: skewed degrees, short weighted diameter.
    let sg = &suite[2];
    let wg = uniform_weights(&sg.graph, 32, 42);
    let delta = 4;
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("branch_based", format!("{}x{threads}", sg.name())),
            &wg,
            |b, g| b.iter(|| run_sssp_weighted(g, 0, delta, Variant::BranchBased, &cfg(threads))),
        );
        group.bench_with_input(
            BenchmarkId::new("branch_avoiding", format!("{}x{threads}", sg.name())),
            &wg,
            |b, g| {
                b.iter(|| run_sssp_weighted(g, 0, delta, Variant::BranchAvoiding, &cfg(threads)))
            },
        );
    }
    group.finish();
}

/// The compressed-representation contrast: raw decode throughput of the
/// branch-avoiding varint cursor (a full adjacency sweep summing every
/// decoded neighbour), then BFS and unit SSSP on the delta-varint
/// [`CompressedCsrGraph`] against the same kernels on the `Vec` CSR, plus
/// the weighted bucket loop on [`CompressedWeightedGraph`]. The
/// csr-vs-compressed gap at matched thread counts is the decode overhead
/// the compression ratio buys back in adjacency bandwidth.
fn bench_parallel_compressed(c: &mut Criterion) {
    let suite = benchmark_suite(SuiteScale::Small, 42);
    let mut group = c.benchmark_group("parallel_compressed");
    group.sample_size(10);
    // coAuthorsDBLP stand-in: skewed degrees, where gap coding pays most.
    let sg = &suite[2];
    let cg = CompressedCsrGraph::from_csr(&sg.graph);
    let wg = uniform_weights(&sg.graph, 32, 42);
    let cwg = CompressedWeightedGraph::from_weighted(&wg);
    let delta = 4;
    // Sequential full-sweep decode: every adjacency list walked once.
    group.bench_with_input(BenchmarkId::new("decode_sweep", sg.name()), &cg, |b, g| {
        b.iter(|| {
            let mut sum = 0u64;
            for v in 0..g.num_vertices() as u32 {
                for w in g.neighbor_cursor(v) {
                    sum = sum.wrapping_add(w as u64);
                }
            }
            sum
        })
    });
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("bfs_csr", format!("{}x{threads}", sg.name())),
            &sg.graph,
            |b, g| {
                b.iter(|| {
                    run_bfs(
                        g,
                        0,
                        BfsStrategy::Plain(Variant::BranchAvoiding),
                        &cfg(threads),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bfs_compressed", format!("{}x{threads}", sg.name())),
            &cg,
            |b, g| {
                b.iter(|| {
                    run_bfs(
                        g,
                        0,
                        BfsStrategy::Plain(Variant::BranchAvoiding),
                        &cfg(threads),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sssp_csr", format!("{}x{threads}", sg.name())),
            &sg.graph,
            |b, g| b.iter(|| run_sssp_unit(g, 0, Variant::BranchAvoiding, &cfg(threads))),
        );
        group.bench_with_input(
            BenchmarkId::new("sssp_compressed", format!("{}x{threads}", sg.name())),
            &cg,
            |b, g| b.iter(|| run_sssp_unit(g, 0, Variant::BranchAvoiding, &cfg(threads))),
        );
        group.bench_with_input(
            BenchmarkId::new(
                "sssp_weighted_compressed",
                format!("{}x{threads}", sg.name()),
            ),
            &cwg,
            |b, g| {
                b.iter(|| run_sssp_weighted(g, 0, delta, Variant::BranchAvoiding, &cfg(threads)))
            },
        );
    }
    group.finish();
}

/// The adaptive-selection ablation: `Variant::Auto` against both static
/// disciplines on the kernels where the crossover matters. Auto pays the
/// tally instrumentation for the first few sampled phases and then runs
/// the predicted-best static variant un-instrumented, so each `auto` row
/// should land within a few percent of the better of its two static
/// neighbours — that gap is the cost of runtime selection.
fn bench_parallel_auto(c: &mut Criterion) {
    let suite = benchmark_suite(SuiteScale::Small, 42);
    let mut group = c.benchmark_group("parallel_auto");
    group.sample_size(10);
    // coAuthorsDBLP stand-in: skewed degrees, the regime where the
    // advisor's misprediction-bound crossover is non-trivial.
    let sg = &suite[2];
    let variants = [
        ("branch_based", Variant::BranchBased),
        ("branch_avoiding", Variant::BranchAvoiding),
        ("auto", Variant::Auto),
    ];
    for threads in [2usize, 8] {
        for (name, variant) in variants {
            group.bench_with_input(
                BenchmarkId::new(&format!("cc_{name}"), format!("{}x{threads}", sg.name())),
                &sg.graph,
                |b, g| b.iter(|| run_components(g, variant, &cfg(threads))),
            );
            group.bench_with_input(
                BenchmarkId::new(&format!("bfs_{name}"), format!("{}x{threads}", sg.name())),
                &sg.graph,
                |b, g| b.iter(|| run_bfs(g, 0, BfsStrategy::Plain(variant), &cfg(threads))),
            );
            group.bench_with_input(
                BenchmarkId::new(&format!("sssp_{name}"), format!("{}x{threads}", sg.name())),
                &sg.graph,
                |b, g| b.iter(|| run_sssp_unit(g, 0, variant, &cfg(threads))),
            );
        }
    }
    group.finish();
}

/// The spawn-overhead contrast the persistent pool exists for: BFS over a
/// high-diameter mesh is hundreds of levels with tiny frontiers, so the
/// per-level cost of standing up workers dominates. A small grain forces
/// every level to fan out; the pool then pays one condvar wake per level
/// where the scoped executor pays `threads - 1` thread spawns + joins. On
/// the `pool` rows should beat the matching `thread_scope` rows clearly —
/// even on a single-core runner, since thread spawn/join cost is
/// core-count independent (the explicit thread counts below fan out
/// regardless of how many cores the host reports).
fn bench_small_frontier_pool_vs_scope(c: &mut Criterion) {
    // ~100x60 VonNeumann mesh, diameter ≈ 160: frontiers of a few dozen
    // vertices for ~160 levels.
    let graph = grid_2d(100, 60, MeshStencil::VonNeumann);
    let mut group = c.benchmark_group("small_frontier_bfs");
    group.sample_size(10);
    // Force per-level fan-out even on tiny frontiers, so the hand-off
    // mechanism itself is what gets measured.
    let grain = 64;
    for threads in [2usize, 4, 8] {
        let pool = WorkerPool::new(threads);
        group.bench_with_input(
            BenchmarkId::new("pool", format!("mesh100x60x{threads}")),
            &graph,
            |b, g| {
                b.iter(|| {
                    run_bfs_on(
                        g,
                        0,
                        BfsStrategy::Plain(Variant::BranchAvoiding),
                        &pool,
                        grain,
                    )
                })
            },
        );
        let scoped = ScopedExecutor::new(threads);
        group.bench_with_input(
            BenchmarkId::new("thread_scope", format!("mesh100x60x{threads}")),
            &graph,
            |b, g| {
                b.iter(|| {
                    run_bfs_on(
                        g,
                        0,
                        BfsStrategy::Plain(Variant::BranchAvoiding),
                        &scoped,
                        grain,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_sv,
    bench_parallel_bfs,
    bench_parallel_bc,
    bench_parallel_kcore,
    bench_parallel_sssp,
    bench_parallel_sssp_weighted,
    bench_parallel_compressed,
    bench_parallel_auto,
    bench_small_frontier_pool_vs_scope
);
criterion_main!(benches);
