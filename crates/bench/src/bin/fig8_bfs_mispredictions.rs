//! Figure 8: top-down BFS branch mispredictions per level (branch-based vs
//! branch-avoiding) and the total misprediction ratio per graph.

use bga_bench::figures::{counter_figure, CounterMetric, Kernel};
use bga_bench::harness::ExperimentContext;

fn main() {
    let ctx = ExperimentContext::from_env();
    counter_figure(&ctx, "Figure 8", Kernel::Bfs, CounterMetric::Mispredictions);
}
