//! Parallel Brandes betweenness centrality on the traversal engine.
//!
//! Brandes' algorithm is a sequence of BFS traversals (one per source)
//! plus a dependency back-sweep — exactly the shape the engine
//! ([`crate::engine`]) was extracted for. The forward phase of each
//! source runs as an engine-driven level-synchronous BFS whose kernel
//! also accumulates shortest-path counts (σ), in the two hooking
//! disciplines the paper contrasts:
//!
//! * [`BcVariant::BranchAvoiding`] — per edge, one unconditional
//!   `fetch_min(next_level)` on the distance (the priority write) with
//!   the branch-free "write past the end" queue claim, and one
//!   unconditional `fetch_add` on σ whose addend is predicated to
//!   σ(parent) exactly when the edge lands on the next level — no
//!   data-dependent branch anywhere in the inner loop.
//! * [`BcVariant::BranchBased`] — per edge, test `distance == INFINITY`
//!   and claim the vertex with a `compare_exchange`, then branch again on
//!   the level test before the σ `fetch_add` — the CAS discipline of
//!   paper Algorithm 4, mirroring the SV pair.
//!
//! σ is accumulated in integers, so the forward phase is exact and
//! deterministic at every thread count. The dependency accumulation then
//! walks the recorded level boundaries ([`crate::engine::LevelRun::level_bounds`])
//! in reverse; each level's vertices *pull* their dependency from the
//! finished level below, so every δ is written by exactly one chunk —
//! race-free without floating-point atomics — and computed from a fixed
//! neighbour order, which makes the final scores **bit-identical across
//! thread counts and executors**. Against the sequential
//! [`bga_kernels::bc::betweenness_centrality`] (whose back-phase *pushes*
//! in reverse BFS order) scores agree to floating-point reassociation,
//! verified within a 1e-9 relative tolerance by the cross-validation
//! tests at 1, 2 and 8 threads.
//!
//! **Normalization.** Full runs use the standard undirected convention:
//! every unordered pair is counted from both endpoints and the total is
//! halved. On a disconnected graph shortest paths exist only *within* a
//! component, so scores are effectively normalised per component.
//! Sampled-source runs (an explicit source set on
//! [`crate::request::run_betweenness`]) return the raw, un-halved
//! accumulation over the given sources — the quantity sampled-source
//! approximations scale — and are cross-validated against
//! [`bga_kernels::bc::betweenness_centrality_sources`].

use crate::auto::AutoSwitch;
use crate::cancel::{self, CancelToken, RunOutcome};
use crate::engine::{
    frontier_degree_prefix, LevelCtx, LevelKernel, LevelLoop, LevelRun, TraversalState,
};
use crate::pool::{
    balanced_prefix_ranges, effective_chunks_with_grain, Execute, PoolConfig, PoolMonitor,
    WorkerPool,
};
use crate::request::{RunConfig, Variant};
use crate::trace::{emit_degradation_warning, run_footprint, TraceRun};
use bga_graph::{AdjacencySource, VertexId};
use bga_kernels::bfs::direction_optimizing::DirectionConfig;
use bga_kernels::bfs::INFINITY;
use bga_obs::{OffsetSink, TraceEvent, TraceSink};
use bga_perfmodel::advisor::AdvisorConfig;
use std::ops::Range;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

/// Which forward-phase hooking discipline a parallel betweenness run uses.
/// Both produce identical σ counts and (bit-identical) scores; they differ
/// only in the per-edge instruction mix, mirroring the SV pair. An alias
/// of the unified [`crate::request::Variant`].
pub use crate::request::Variant as BcVariant;

/// Result of a parallel betweenness run through the request API.
#[derive(Clone, Debug)]
pub struct ParBcRun {
    /// Per-vertex centrality scores. Full runs (no explicit source set)
    /// use the standard halved undirected convention; sampled-source runs
    /// return the raw un-halved accumulation.
    pub scores: Vec<f64>,
    /// Number of sources whose contribution is fully accumulated — equal
    /// to the source count on a completed run, the exact prefix on an
    /// interrupted one.
    pub sources_done: usize,
    /// Worker count the run actually used.
    pub threads: usize,
}

/// Brandes forward phase as a level kernel: BFS discovery plus σ
/// accumulation, in the discipline selected by `BRANCH_AVOIDING`. Runs
/// strictly top-down (σ accumulation needs every cross-level edge, which
/// the early-exit bottom-up claim would skip). `TALLY` compiles in the
/// per-thread instruction tally, feeding phase counters and the variant
/// advisor.
struct BcForward<const BRANCH_AVOIDING: bool, const TALLY: bool>;

impl<G: AdjacencySource, const BRANCH_AVOIDING: bool, const TALLY: bool> LevelKernel<G>
    for BcForward<BRANCH_AVOIDING, TALLY>
{
    fn instrumented(&self) -> bool {
        TALLY
    }

    fn top_down_chunk(
        &self,
        ctx: &LevelCtx<'_, G>,
        frontier: &[VertexId],
        range: Range<usize>,
        chunk_edges: usize,
        tally: &mut crate::counters::ThreadTally,
    ) -> Vec<VertexId> {
        let distances = ctx.state.distances();
        let sigma = ctx.state.sigma().expect("BC traversal state carries sigma");
        let next_level = ctx.next_level;
        if BRANCH_AVOIDING {
            let mut buffer = vec![0 as VertexId; chunk_edges.min(ctx.graph.num_vertices()) + 1];
            let mut len = 0usize;
            for &v in &frontier[range] {
                // σ(v) is final: the level barrier ran before this chunk.
                let sigma_v = sigma[v as usize].load(Relaxed);
                if TALLY {
                    tally.vertices += 1;
                    tally.loads += 1; // σ(v)
                    tally.branches += 1; // frontier-loop bound
                }
                for w in ctx.graph.neighbor_cursor(v) {
                    // The priority write, with the branch-free queue claim.
                    let prev = distances[w as usize].fetch_min(next_level, Relaxed);
                    buffer[len] = w;
                    len += usize::from(prev > next_level);
                    // Unconditional σ accumulation with a predicated
                    // addend: σ_v exactly when w sits at `next_level`
                    // (`prev >= next_level` covers both "this edge
                    // discovered w" and "another edge of this level did"),
                    // zero when w lives on an earlier level.
                    sigma[w as usize].fetch_add(u64::from(prev >= next_level) * sigma_v, Relaxed);
                    if TALLY {
                        tally.edges += 1;
                        tally.loads += 2; // fetch_min + fetch_add reads
                        tally.stores += 3; // distance + queue slot + σ
                        tally.conditional_moves += 3; // claim length + two predicated values
                        tally.branches += 1; // neighbour-loop bound only
                        tally.updates += u64::from(prev > next_level);
                    }
                }
            }
            buffer.truncate(len);
            buffer
        } else {
            let mut local = Vec::new();
            for &v in &frontier[range] {
                let sigma_v = sigma[v as usize].load(Relaxed);
                if TALLY {
                    tally.vertices += 1;
                    tally.loads += 1; // σ(v)
                    tally.branches += 1; // frontier-loop bound
                }
                for w in ctx.graph.neighbor_cursor(v) {
                    let dw = distances[w as usize].load(Relaxed);
                    if TALLY {
                        tally.edges += 1;
                        tally.loads += 1;
                        tally.branches += 2; // neighbour-loop bound + visited test
                        tally.data_branches += 1;
                    }
                    if dw == INFINITY {
                        // Data-dependent test, then claim with a CAS;
                        // exactly one contender per vertex succeeds.
                        let claimed = distances[w as usize]
                            .compare_exchange(INFINITY, next_level, Relaxed, Relaxed)
                            .is_ok();
                        if claimed {
                            local.push(w);
                        }
                        if TALLY {
                            tally.loads += 1;
                            tally.branches += 1; // CAS-outcome test
                            tally.data_branches += 1;
                            tally.stores += 1 + 2 * u64::from(claimed); // σ, plus distance + queue slot on the win
                            tally.updates += u64::from(claimed);
                        }
                        // Whichever contender won, d(w) is now
                        // `next_level` (within a level every writer writes
                        // the same value), so this edge lies on a shortest
                        // path and must contribute σ_v.
                        sigma[w as usize].fetch_add(sigma_v, Relaxed);
                    } else if dw == next_level {
                        sigma[w as usize].fetch_add(sigma_v, Relaxed);
                        if TALLY {
                            tally.loads += 1;
                            tally.stores += 1; // σ
                            tally.branches += 1; // level test
                            tally.data_branches += 1;
                        }
                    } else if TALLY {
                        tally.branches += 1; // level test, fell through
                        tally.data_branches += 1;
                    }
                }
            }
            local
        }
    }
}

/// One shared auto-switching forward kernel for a whole multi-source run:
/// the advisor samples the first source's levels and the decision then
/// persists across every subsequent source on the same snapshot.
#[allow(clippy::type_complexity)]
fn auto_forward(
    tally_always: bool,
) -> AutoSwitch<
    BcForward<false, true>,
    BcForward<false, false>,
    BcForward<true, true>,
    BcForward<true, false>,
> {
    AutoSwitch::new(
        BcForward::<false, true>,
        BcForward::<false, false>,
        BcForward::<true, true>,
        BcForward::<true, false>,
        AdvisorConfig::default(),
        tally_always,
    )
}

/// Pull-style dependency accumulation for one finished source: walk the
/// recorded level boundaries deepest-first; every vertex of a level reads
/// the finished δ of its children one level down, so δ writes are
/// disjoint per chunk and the per-vertex sum has a fixed order.
fn accumulate_dependencies<G: AdjacencySource, E: Execute>(
    graph: &G,
    exec: &E,
    grain: usize,
    run: &LevelRun,
    state: &TraversalState,
    delta: &mut [f64],
    centrality: &mut [f64],
) {
    let (order, level_bounds) = (&run.order, &run.level_bounds);
    let levels = level_bounds.len();
    if levels < 2 {
        return;
    }
    for d in delta.iter_mut() {
        *d = 0.0;
    }
    let distances = state.distances();
    let sigma = state.sigma().expect("BC traversal state carries sigma");
    let threads = exec.parallelism();
    // The deepest level's δ is zero by definition, so start one above it.
    for level in (1..levels - 1).rev() {
        let members = &order[level_bounds[level].clone()];
        let prefix = frontier_degree_prefix(graph, members);
        let chunks = effective_chunks_with_grain(*prefix.last().unwrap_or(&0), threads, grain);
        let ranges = balanced_prefix_ranges(&prefix, chunks);
        let child_level = level as u32 + 1;
        let delta_ref: &[f64] = delta;
        let buffers: Vec<Vec<f64>> = exec.run(ranges, move |_chunk, range| {
            members[range]
                .iter()
                .map(|&w| {
                    let sigma_w = sigma[w as usize].load(Relaxed) as f64;
                    let mut acc = 0.0f64;
                    for x in graph.neighbor_cursor(w) {
                        // Pull from the children one level deeper; their δ
                        // was finished by the previous iteration's barrier.
                        if distances[x as usize].load(Relaxed) == child_level {
                            acc += sigma_w * (1.0 + delta_ref[x as usize])
                                / sigma[x as usize].load(Relaxed) as f64;
                        }
                    }
                    acc
                })
                .collect()
        });
        // Disjoint per-vertex results, written back on the submitting
        // thread in level order.
        let mut index = 0usize;
        for buffer in buffers {
            for value in buffer {
                let w = members[index] as usize;
                delta[w] = value;
                centrality[w] += value;
                index += 1;
            }
        }
    }
}

/// The shared all/sampled-sources driver: un-halved accumulation.
fn par_bc_accumulate_on<G: AdjacencySource, E: Execute>(
    graph: &G,
    sources: &[VertexId],
    exec: &E,
    grain: usize,
    variant: BcVariant,
) -> Vec<f64> {
    let n = graph.num_vertices();
    let mut centrality = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut state = TraversalState::with_sigma(n);
    let level_loop = LevelLoop::new(graph, exec, grain, DirectionConfig::always_top_down());
    let auto = auto_forward(false);
    for &source in sources {
        if (source as usize) >= n {
            continue;
        }
        state.reset();
        let run = match variant {
            BcVariant::BranchAvoiding => level_loop.run(&state, source, &BcForward::<true, false>),
            BcVariant::BranchBased => level_loop.run(&state, source, &BcForward::<false, false>),
            BcVariant::Auto => level_loop.run(&state, source, &auto),
        };
        accumulate_dependencies(
            graph,
            exec,
            grain,
            &run,
            &state,
            &mut delta,
            &mut centrality,
        );
    }
    centrality
}

/// The unified request driver behind [`crate::request::run_betweenness`]:
/// observed runs (trace sink or cancel token) go through the monitored
/// multi-source driver, everything else through the unmonitored fast
/// path. `sources: None` means the full accumulation over every vertex
/// with the standard halved undirected convention; `Some` returns the raw
/// un-halved sums over the given set. BC kernels carry no tally, so
/// `RunConfig::instrumented` has no effect here.
pub(crate) fn run_request<G: AdjacencySource, S: TraceSink>(
    graph: &G,
    variant: Variant,
    sources: Option<&[VertexId]>,
    config: &RunConfig<'_, S>,
) -> (ParBcRun, RunOutcome) {
    let pool_config = config.pool_config();
    let all: Vec<VertexId>;
    let source_list: &[VertexId] = match sources {
        Some(list) => list,
        None => {
            all = (0..graph.num_vertices() as VertexId).collect();
            &all
        }
    };
    let (mut scores, sources_done, outcome) = if config.observed() {
        par_bc_accumulate_impl(
            graph,
            source_list,
            &pool_config,
            variant,
            config.sink,
            config.cancel,
        )
    } else {
        let pool = WorkerPool::with_config(&pool_config);
        let scores = par_bc_accumulate_on(graph, source_list, &pool, pool_config.grain, variant);
        (scores, source_list.len(), RunOutcome::Completed)
    };
    if sources.is_none() {
        // Each undirected pair was counted twice (once per endpoint).
        for c in &mut scores {
            *c /= 2.0;
        }
    }
    (
        ParBcRun {
            scores,
            sources_done,
            threads: pool_config.threads,
        },
        outcome,
    )
}

/// [`run_request`] on an explicit executor: plain kernels, the bench seam.
pub(crate) fn run_request_on<G: AdjacencySource, E: Execute>(
    graph: &G,
    variant: Variant,
    sources: Option<&[VertexId]>,
    exec: &E,
    grain: usize,
) -> ParBcRun {
    let all: Vec<VertexId>;
    let source_list: &[VertexId] = match sources {
        Some(list) => list,
        None => {
            all = (0..graph.num_vertices() as VertexId).collect();
            &all
        }
    };
    let mut scores = par_bc_accumulate_on(graph, source_list, exec, grain, variant);
    if sources.is_none() {
        for c in &mut scores {
            *c /= 2.0;
        }
    }
    ParBcRun {
        scores,
        sources_done: source_list.len(),
        threads: exec.parallelism(),
    }
}

/// The shared monitored driver behind the traced and cancellable
/// multi-source entry points. The token is checked between sources
/// (against the total forward phases emitted so far) and inside each
/// source's forward traversal at every level boundary; a source whose
/// traversal is interrupted contributes nothing, so the returned scores
/// are always the *exact* accumulation over the first `sources_done`
/// sources.
fn par_bc_accumulate_impl<G: AdjacencySource, S: TraceSink>(
    graph: &G,
    sources: &[VertexId],
    config: &PoolConfig,
    variant: Variant,
    sink: &S,
    token: Option<&CancelToken>,
) -> (Vec<f64>, usize, RunOutcome) {
    let monitor = PoolMonitor::new();
    let pool = WorkerPool::with_monitor(config.threads, Arc::clone(&monitor));
    let scope = TraceRun::start(
        sink,
        TraceEvent::RunStart {
            kernel: "bc".to_string(),
            variant: variant.as_str().to_string(),
            vertices: graph.num_vertices(),
            edges: graph.num_edge_slots(),
            threads: pool.threads(),
            grain: config.grain,
            delta: None,
            root: if sources.len() == 1 {
                sources.first().copied()
            } else {
                None
            },
            footprint: Some(run_footprint(graph.footprint())),
        },
    );
    let n = graph.num_vertices();
    let mut centrality = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut state = TraversalState::with_sigma(n);
    let level_loop = LevelLoop::new(
        graph,
        &pool,
        config.grain,
        DirectionConfig::always_top_down(),
    );
    let mut sources_done = 0usize;
    // Counted here rather than through the scope so the budget works with
    // a disabled sink too (a NoopSink never sees the phase events).
    let mut total_phases = 0usize;
    let mut outcome = RunOutcome::Completed;
    // Shared across sources: the advisor samples the first source's
    // levels, and every later source runs the chosen static discipline.
    let auto = auto_forward(true);
    for &source in sources {
        if (source as usize) >= n {
            sources_done += 1;
            continue;
        }
        if let Some(stop) = cancel::check(token, total_phases) {
            outcome = stop;
            break;
        }
        state.reset();
        let per_source = OffsetSink::new(&scope, scope.phases_so_far());
        let (run, forward_outcome) = match variant {
            BcVariant::BranchAvoiding => level_loop.run_loop(
                &state,
                source,
                &BcForward::<true, false>,
                &per_source,
                token,
            ),
            BcVariant::BranchBased => level_loop.run_loop(
                &state,
                source,
                &BcForward::<false, false>,
                &per_source,
                token,
            ),
            BcVariant::Auto => level_loop.run_loop(&state, source, &auto, &per_source, token),
        };
        if !forward_outcome.is_completed() {
            outcome = forward_outcome;
            break;
        }
        total_phases += run.directions.len();
        accumulate_dependencies(
            graph,
            &pool,
            config.grain,
            &run,
            &state,
            &mut delta,
            &mut centrality,
        );
        sources_done += 1;
    }
    emit_degradation_warning(&pool, &scope);
    scope.finish_with_outcome(Some(monitor.take_metrics()), &outcome);
    (centrality, sources_done, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bga_graph::generators::{
        barabasi_albert, complete_graph, cycle_graph, grid_2d, path_graph, star_graph, MeshStencil,
    };
    use bga_graph::{CsrGraph, GraphBuilder};
    use bga_kernels::bc::{betweenness_centrality, betweenness_centrality_sources};

    /// 1e-9 tolerance, scaled by magnitude: sequential and parallel runs
    /// sum the same dependencies in different orders, so agreement is up
    /// to floating-point reassociation.
    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            let tolerance = 1e-9 * x.abs().max(y.abs()).max(1.0);
            assert!((x - y).abs() < tolerance, "vertex {i}: {x} vs {y}");
        }
    }

    fn shapes() -> Vec<CsrGraph> {
        vec![
            GraphBuilder::undirected(0).build(),
            GraphBuilder::undirected(1).build(),
            GraphBuilder::undirected(5)
                .add_edges([(0, 1), (2, 3)])
                .build(), // disconnected
            path_graph(9),
            star_graph(20),
            cycle_graph(15),
            complete_graph(8),
            grid_2d(7, 6, MeshStencil::VonNeumann),
            barabasi_albert(150, 2, 4),
        ]
    }

    fn full_scores<G: AdjacencySource>(g: &G, threads: usize, variant: Variant) -> Vec<f64> {
        run_request(g, variant, None, &RunConfig::new().threads(threads))
            .0
            .scores
    }

    fn sampled_scores<G: AdjacencySource>(
        g: &G,
        sources: &[VertexId],
        threads: usize,
        variant: Variant,
    ) -> Vec<f64> {
        run_request(
            g,
            variant,
            Some(sources),
            &RunConfig::new().threads(threads),
        )
        .0
        .scores
    }

    #[test]
    fn full_scores_match_sequential_brandes_at_every_thread_count() {
        for g in &shapes() {
            let expected = betweenness_centrality(g);
            for threads in [1, 2, 8] {
                for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
                    let scores = full_scores(g, threads, variant);
                    assert_close(&scores, &expected);
                }
            }
        }
    }

    #[test]
    fn scores_are_bit_identical_across_threads_and_variants() {
        let g = barabasi_albert(300, 3, 7);
        let reference = full_scores(&g, 1, Variant::BranchAvoiding);
        for threads in [2, 3, 8] {
            for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
                let scores = full_scores(&g, threads, variant);
                for (a, b) in reference.iter().zip(scores.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads, {variant:?}");
                }
            }
        }
    }

    #[test]
    fn sampled_sources_match_the_sequential_partial_accumulation() {
        let g = barabasi_albert(400, 2, 11);
        let sources = [0u32, 7, 123, 399];
        let expected = betweenness_centrality_sources(&g, &sources);
        for threads in [1, 2, 8] {
            for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
                let scores = sampled_scores(&g, &sources, threads, variant);
                assert_close(&scores, &expected);
            }
        }
        // Out-of-range sources are ignored, not a panic.
        let none = sampled_scores(&g, &[9_999], 2, Variant::BranchAvoiding);
        assert!(none.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn executors_and_grains_agree() {
        use crate::pool::ScopedExecutor;
        let g = grid_2d(9, 8, MeshStencil::Moore);
        let expected = betweenness_centrality(&g);
        let pool = WorkerPool::new(4);
        let scoped = ScopedExecutor::new(4);
        // Grain 1 forces every level and back-sweep slice to fan out.
        for grain in [1, 4096] {
            for variant in [Variant::BranchBased, Variant::BranchAvoiding] {
                assert_close(
                    &run_request_on(&g, variant, None, &pool, grain).scores,
                    &expected,
                );
            }
            assert_close(
                &run_request_on(&g, Variant::BranchAvoiding, None, &scoped, grain).scores,
                &expected,
            );
        }
    }

    #[test]
    fn star_centre_carries_all_paths() {
        let g = star_graph(6);
        let scores = full_scores(&g, 4, Variant::BranchAvoiding);
        // Centre lies on every one of the C(5,2) = 10 leaf pairs' paths.
        assert!((scores[0] - 10.0).abs() < 1e-9);
        for score in &scores[1..6] {
            assert!(score.abs() < 1e-9);
        }
    }

    #[test]
    fn interrupted_accumulations_are_exact_over_the_source_prefix() {
        let g = barabasi_albert(200, 2, 9);
        let sources: Vec<VertexId> = (0..40).collect();
        // A global phase budget cuts between sources once the total
        // forward-level count crosses it; the surviving scores must be
        // exactly the accumulation over the completed prefix.
        let token = CancelToken::new().with_phase_budget(12);
        let (run, outcome) = run_request(
            &g,
            Variant::BranchAvoiding,
            Some(&sources),
            &RunConfig::new().threads(2).cancel(&token),
        );
        assert!(!outcome.is_completed());
        let done = run.sources_done;
        assert!(done > 0 && done < sources.len(), "done = {done}");
        let expected = betweenness_centrality_sources(&g, &sources[..done]);
        assert_close(&run.scores, &expected);
    }

    #[test]
    fn uncancelled_bc_tokens_complete_and_match() {
        let g = grid_2d(7, 6, MeshStencil::VonNeumann);
        let sources: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
        let token = CancelToken::new();
        let (run, outcome) = run_request(
            &g,
            Variant::BranchBased,
            Some(&sources),
            &RunConfig::new().threads(2).cancel(&token),
        );
        assert!(outcome.is_completed());
        assert_eq!(run.sources_done, sources.len());
        assert_close(&run.scores, &betweenness_centrality_sources(&g, &sources));
    }

    #[test]
    fn disconnected_components_accumulate_independently() {
        // Two paths of three: the middles carry exactly their component's
        // single straddling pair — the per-component normalization.
        let g = GraphBuilder::undirected(6)
            .add_edges([(0, 1), (1, 2), (3, 4), (4, 5)])
            .build();
        let scores = full_scores(&g, 2, Variant::BranchAvoiding);
        assert_close(&scores, &[0.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn auto_variant_matches_the_static_scores() {
        let g = barabasi_albert(300, 3, 7);
        // Both static disciplines are bit-identical, so the advisor's
        // choice cannot show: auto must reproduce the exact same bits.
        let reference = full_scores(&g, 1, Variant::BranchAvoiding);
        for threads in [1, 2, 8] {
            let scores = run_request(
                &g,
                Variant::Auto,
                None,
                &RunConfig::new().threads(threads).grain(1),
            )
            .0
            .scores;
            for (a, b) in reference.iter().zip(scores.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
            }
        }
        // Sampled sources go through the monitored driver when cancellable.
        let sources = [0u32, 7, 123, 299];
        let token = CancelToken::new();
        let (run, outcome) = run_request(
            &g,
            Variant::Auto,
            Some(&sources),
            &RunConfig::new().threads(2).grain(1).cancel(&token),
        );
        assert!(outcome.is_completed());
        assert_eq!(run.sources_done, sources.len());
        assert_close(&run.scores, &betweenness_centrality_sources(&g, &sources));
    }
}
