//! Correlation analysis for Figure 10.
//!
//! The paper correlates, per edge traversal, the six quantities time (T),
//! instructions (I), branches (B), mispredictions (M), loads (L) and stores
//! (S) across every iteration/level of every graph, and reports pairwise
//! Pearson correlation coefficients. The headline observations:
//!
//! * for SV, mispredictions correlate with time more strongly than loads or
//!   stores do;
//! * for BFS, stores correlate with time at least as strongly as
//!   mispredictions do.

use bga_branchsim::MachineModel;
use bga_kernels::stats::RunCounters;

/// Index of each metric in a Figure-10 sample vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Modelled time (cycles) per edge.
    Time = 0,
    /// Instructions per edge.
    Instructions = 1,
    /// Branches per edge.
    Branches = 2,
    /// Branch mispredictions per edge.
    Mispredictions = 3,
    /// Loads per edge.
    Loads = 4,
    /// Stores per edge.
    Stores = 5,
}

impl Metric {
    /// All six metrics in figure order.
    pub const ALL: [Metric; 6] = [
        Metric::Time,
        Metric::Instructions,
        Metric::Branches,
        Metric::Mispredictions,
        Metric::Loads,
        Metric::Stores,
    ];

    /// One-letter label used in the figure ("T", "I", "B", "M", "L", "S").
    pub fn label(self) -> &'static str {
        match self {
            Metric::Time => "T",
            Metric::Instructions => "I",
            Metric::Branches => "B",
            Metric::Mispredictions => "M",
            Metric::Loads => "L",
            Metric::Stores => "S",
        }
    }
}

/// One sample: the six per-edge metrics of one SV iteration or BFS level.
pub type Sample = [f64; 6];

/// Pearson correlation coefficient of two equal-length series. Returns
/// `None` when either series has zero variance or fewer than two points.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x) * (x - mean_x);
        var_y += (y - mean_y) * (y - mean_y);
    }
    if var_x == 0.0 || var_y == 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

/// Extracts one Figure-10 sample per step of `run`, modelling time on
/// `machine` and normalizing every metric by the edges traversed in that
/// step. Steps that traversed no edges are skipped.
pub fn samples_per_edge(run: &RunCounters, machine: &MachineModel) -> Vec<Sample> {
    run.steps
        .iter()
        .filter(|s| s.edges_traversed > 0)
        .map(|s| {
            let e = s.edges_traversed as f64;
            [
                machine.modeled_cycles(&s.counters) / e,
                s.counters.instructions as f64 / e,
                s.counters.branches as f64 / e,
                s.counters.branch_mispredictions as f64 / e,
                s.counters.loads as f64 / e,
                s.counters.stores as f64 / e,
            ]
        })
        .collect()
}

/// Full 6x6 Pearson correlation matrix over a set of samples. Entries whose
/// correlation is undefined (zero variance) are reported as `NaN`; the
/// diagonal is 1.
pub fn correlation_matrix(samples: &[Sample]) -> [[f64; 6]; 6] {
    let mut matrix = [[f64::NAN; 6]; 6];
    for i in 0..6 {
        matrix[i][i] = 1.0;
        for j in (i + 1)..6 {
            let xs: Vec<f64> = samples.iter().map(|s| s[i]).collect();
            let ys: Vec<f64> = samples.iter().map(|s| s[j]).collect();
            let r = pearson(&xs, &ys).unwrap_or(f64::NAN);
            matrix[i][j] = r;
            matrix[j][i] = r;
        }
    }
    matrix
}

/// Correlation of each metric against time, in metric order — the first row
/// of the Figure-10 grid, which carries the paper's conclusions.
pub fn correlation_with_time(samples: &[Sample]) -> [f64; 6] {
    let matrix = correlation_matrix(samples);
    matrix[Metric::Time as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bga_branchsim::machine_model::haswell;
    use bga_graph::generators::{barabasi_albert, grid_2d, MeshStencil};
    use bga_graph::transform::relabel_random;
    use bga_kernels::bfs::bfs_branch_based_instrumented;
    use bga_kernels::cc::sv_branch_based_instrumented;

    #[test]
    fn pearson_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]).is_none());
        assert!(pearson(&xs, &ys[..3]).is_none());
        assert!(pearson(&[1.0], &[2.0]).is_none());
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let samples: Vec<Sample> = (0..20)
            .map(|i| {
                let x = i as f64;
                [x, 2.0 * x, x * x, (20.0 - x), x.sqrt(), 1.0 + x]
            })
            .collect();
        let m = correlation_matrix(&samples);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, value) in row.iter().enumerate() {
                assert!((value - m[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn metric_labels_are_the_figure_letters() {
        let labels: Vec<_> = Metric::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["T", "I", "B", "M", "L", "S"]);
    }

    #[test]
    fn sv_mispredictions_correlate_with_time_more_than_memory_traffic() {
        // The paper's SV headline (Figure 10a): M correlates with T more
        // strongly than L or S do. Pool per-iteration samples from several
        // graphs, as the paper pools graphs and platforms.
        let machine = haswell();
        let mut samples = Vec::new();
        for (i, g) in [
            relabel_random(&grid_2d(20, 20, MeshStencil::Moore), 1),
            barabasi_albert(800, 3, 2),
            relabel_random(&grid_2d(30, 10, MeshStencil::VonNeumann), 3),
        ]
        .iter()
        .enumerate()
        {
            let run = sv_branch_based_instrumented(g);
            samples.extend(samples_per_edge(&run.counters, &machine));
            assert!(!samples.is_empty(), "graph {i} produced no samples");
        }
        let with_time = correlation_with_time(&samples);
        let m = with_time[Metric::Mispredictions as usize];
        let l = with_time[Metric::Loads as usize];
        let s = with_time[Metric::Stores as usize];
        assert!(
            m > l.abs() - 0.2 && m > 0.5,
            "mispredictions should correlate strongly with time: M={m}, L={l}, S={s}"
        );
    }

    #[test]
    fn bfs_stores_correlate_with_time_at_least_as_much_as_loads() {
        let machine = haswell();
        let mut samples = Vec::new();
        for g in [
            relabel_random(&grid_2d(20, 20, MeshStencil::Moore), 4),
            barabasi_albert(800, 3, 5),
        ] {
            let run = bfs_branch_based_instrumented(&g, 0);
            samples.extend(samples_per_edge(&run.counters, &machine));
        }
        let with_time = correlation_with_time(&samples);
        let s = with_time[Metric::Stores as usize];
        assert!(
            s > 0.3,
            "per-edge stores should be positively correlated with time in BFS, got {s}"
        );
    }
}
