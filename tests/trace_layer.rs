//! Integration tests for the structured tracing layer: the `bga-trace-v1`
//! JSONL stream round-trips through the parser byte-for-byte, real traced
//! runs pass stream validation (and tampered streams do not), and the
//! event sequences the engine emits are deterministic — fully so for the
//! level-synchronous BFS across thread counts, structurally so for the
//! bucket loop across executors and grains (raw claim counters may vary
//! with interleaving; phase structure may not).

use branch_avoiding_graphs::parallel::{BranchAvoidingRelax, Execute, ScopedExecutor};
use branch_avoiding_graphs::prelude::*;

// ---------------------------------------------------------------------------
// JSONL round-trip + validation on real traced runs
// ---------------------------------------------------------------------------

/// Serializes a traced run into a JSONL byte stream, then checks that
/// parsing and re-serializing reproduces the stream exactly and that the
/// validator accepts it. Returns the parsed events and the report.
fn round_trip(run: impl FnOnce(&JsonlSink<Vec<u8>>)) -> (Vec<TraceEvent>, TraceReport) {
    let sink = JsonlSink::new(Vec::new());
    run(&sink);
    let bytes = sink.finish().expect("in-memory sink cannot fail");
    let text = String::from_utf8(bytes).expect("trace streams are UTF-8");
    let events = parse_trace(&text).expect("traced run emitted an unparsable stream");
    let reserialized: Vec<String> = events.iter().map(TraceEvent::to_json_line).collect();
    let original: Vec<String> = text.lines().map(String::from).collect();
    assert_eq!(original, reserialized, "round trip is not byte-identical");
    let report = validate_trace(&events).expect("traced run emitted an invalid stream");
    (events, report)
}

#[test]
fn traced_runs_round_trip_and_validate() {
    let g = generators::grid_2d(16, 16, generators::MeshStencil::Moore);

    let (_, report) = round_trip(|sink| {
        run_components(
            &g,
            Variant::BranchAvoiding,
            &RunConfig::new().threads(2).traced(sink),
        );
    });
    assert_eq!(report.kernel, "cc");
    assert_eq!(report.variant, "branch-avoiding");
    assert_eq!(report.vertices, g.num_vertices());
    assert_eq!(report.edges, g.num_edge_slots());
    assert!(!report.phases.is_empty());

    let (_, report) = round_trip(|sink| {
        run_kcore(
            &g,
            Variant::BranchAvoiding,
            &RunConfig::new().threads(2).traced(sink),
        );
    });
    assert_eq!(report.kernel, "kcore");
    assert!(report.phases.iter().any(|p| p.kind == PhaseKind::Seed));

    let wg = uniform_weights(&g, 12, 7);
    let (_, report) = round_trip(|sink| {
        run_sssp_weighted(
            &wg,
            0,
            4,
            Variant::BranchAvoiding,
            &RunConfig::new().threads(2).traced(sink),
        );
    });
    assert_eq!(report.kernel, "sssp-weighted");
    assert_eq!(report.delta, Some(4));
    assert_eq!(report.root, Some(0));
    assert!(report
        .phases
        .iter()
        .all(|p| p.kind == PhaseKind::Light || p.kind == PhaseKind::Heavy));
    // Run-end totals equal the sum of the per-phase counters (the
    // validator enforces this; pin it here against a real stream too).
    let summed = report
        .phases
        .iter()
        .fold(PhaseCounters::default(), |acc, p| acc + p.counters);
    assert_eq!(report.totals, summed);
}

/// A run cancelled mid-traversal still emits a complete, validating
/// `bga-trace-v1` document: header, one phase per completed sweep, and a
/// trailer whose `interrupted` field carries the reason — the same stream
/// `bga trace validate` accepts from a `--timeout-ms`-expired CLI run.
#[test]
fn interrupted_traced_runs_still_round_trip_and_validate() {
    use branch_avoiding_graphs::parallel::CancelToken;
    let g = generators::grid_2d(16, 16, generators::MeshStencil::VonNeumann);
    let token = CancelToken::new().with_phase_budget(1);
    let (events, report) = round_trip(|sink| {
        let config = RunConfig::new().threads(2).traced(sink).cancel(&token);
        let (_, outcome) = run_components(&g, Variant::BranchAvoiding, &config);
        assert!(!outcome.is_completed(), "a 16x16 grid needs several sweeps");
    });
    match events.last() {
        Some(TraceEvent::RunEnd {
            phases,
            interrupted,
            ..
        }) => {
            assert_eq!(*phases, 1, "budget 1 allows exactly one sweep");
            assert_eq!(interrupted.as_deref(), Some("phase-budget"));
        }
        other => panic!("trailer is not a run-end event: {other:?}"),
    }
    assert_eq!(report.interrupted.as_deref(), Some("phase-budget"));
    assert_eq!(report.phases.len(), 1);
}

#[test]
fn tampered_streams_are_rejected() {
    let g = generators::grid_2d(8, 8, generators::MeshStencil::VonNeumann);
    let sink = MemorySink::new();
    run_bfs(
        &g,
        0,
        BfsStrategy::Plain(Variant::BranchAvoiding),
        &RunConfig::new().threads(2).traced(&sink),
    );
    let events = sink.take();
    assert!(validate_trace(&events).is_ok());

    // Missing trailer.
    assert!(validate_trace(&events[..events.len() - 1]).is_err());
    // Missing header.
    assert!(validate_trace(&events[1..]).is_err());
    // Duplicated header.
    let mut doubled = events.clone();
    doubled.insert(1, events[0].clone());
    assert!(validate_trace(&doubled).is_err());
    // A gap in the phase indices.
    let mut gapped = events.clone();
    let second_phase = gapped
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, TraceEvent::Phase(_)))
        .nth(1)
        .map(|(i, _)| i)
        .expect("a 2-level BFS has at least two phases");
    gapped.remove(second_phase);
    assert!(validate_trace(&gapped).is_err());
    // Totals that no longer sum.
    let mut cooked = events.clone();
    let last = cooked.len() - 1;
    if let TraceEvent::RunEnd { totals, .. } = &mut cooked[last] {
        totals.edges += 1;
    } else {
        panic!("trailer is not a run-end event");
    }
    assert!(validate_trace(&cooked).is_err());
}

// ---------------------------------------------------------------------------
// Determinism of emitted event sequences
// ---------------------------------------------------------------------------

/// Strips the fields that legitimately vary between runs — wall clocks,
/// pool scheduling events and the resolved thread/grain configuration —
/// leaving the event content that must be identical for identical inputs.
fn normalized(events: Vec<TraceEvent>) -> Vec<TraceEvent> {
    events
        .into_iter()
        .filter_map(|event| match event {
            TraceEvent::PoolBatch { .. } | TraceEvent::PoolSummary { .. } => None,
            // A degradation warning is load-bearing: a healthy run emits
            // none, so one showing up SHOULD fail the determinism check.
            warning @ TraceEvent::Warning { .. } => Some(warning),
            TraceEvent::RunStart {
                kernel,
                variant,
                vertices,
                edges,
                delta,
                root,
                footprint,
                ..
            } => Some(TraceEvent::RunStart {
                kernel,
                variant,
                vertices,
                edges,
                threads: 0,
                grain: 0,
                delta,
                root,
                footprint,
            }),
            TraceEvent::Phase(mut phase) => {
                phase.wall_ns = 0;
                Some(TraceEvent::Phase(phase))
            }
            // Advisor decisions are deterministic functions of the phase
            // tallies, so they must replay identically too.
            decision @ TraceEvent::Decision(_) => Some(decision),
            TraceEvent::RunEnd {
                phases,
                totals,
                interrupted,
                ..
            } => Some(TraceEvent::RunEnd {
                phases,
                totals,
                wall_ns: 0,
                interrupted,
            }),
        })
        .collect()
}

/// The branch-avoiding BFS tallies unconditionally per edge and counts a
/// discovery only on a successful `fetch_min` claim, so its *full* event
/// stream — frontier sizes, discovered counts and every counter — is a
/// pure function of the graph, independent of thread count and chunking.
#[test]
fn bfs_event_stream_is_deterministic_across_thread_counts() {
    let g = generators::barabasi_albert(2_000, 3, 9);
    let trace_at = |threads: usize| {
        let sink = MemorySink::new();
        let run = run_bfs(
            &g,
            0,
            BfsStrategy::Plain(Variant::BranchAvoiding),
            &RunConfig::new().threads(threads).traced(&sink),
        )
        .0;
        (normalized(sink.take()), run.result)
    };
    let (reference_events, reference_result) = trace_at(1);
    assert!(!reference_events.is_empty());
    for threads in [2, 4] {
        let (events, result) = trace_at(threads);
        assert_eq!(
            result.distances(),
            reference_result.distances(),
            "{threads} threads changed the distances"
        );
        assert_eq!(
            events, reference_events,
            "{threads} threads changed the normalized event stream"
        );
    }
    // Repeats at a fixed thread count are exact too.
    let (repeat, _) = trace_at(2);
    let (again, _) = trace_at(2);
    assert_eq!(repeat, again);
}

/// Structural fields of one bucket-loop phase event: everything except
/// the counters (duplicate-claim tallies may vary with interleaving) and
/// the wall clock.
type PhaseShape = (usize, PhaseKind, Option<usize>, usize, usize, Option<bool>);

fn bucket_phase_shapes<E: Execute>(
    wg: &WeightedCsrGraph,
    exec: &E,
    grain: usize,
) -> Vec<PhaseShape> {
    let sink = MemorySink::new();
    let state = TraversalState::new(wg.num_vertices());
    BucketLoop::new(wg, exec, grain, 4).run_traced(&state, 0, &BranchAvoidingRelax::<false>, &sink);
    sink.take()
        .into_iter()
        .map(|event| match event {
            TraceEvent::Phase(p) => (
                p.index,
                p.kind,
                p.bucket,
                p.frontier,
                p.discovered,
                p.changed,
            ),
            other => panic!("bucket loop emitted a non-phase event: {other:?}"),
        })
        .collect()
}

/// The bucket loop's phase schedule — pass order, kinds, bucket tags,
/// frontier snapshots and distinct-improvement counts — is deterministic
/// across executors, thread counts and grains, because each pass's
/// improved set is a pure function of its frontier snapshot.
#[test]
fn bucket_phase_structure_is_deterministic_across_executors_and_grains() {
    let wg = uniform_weights(&generators::barabasi_albert(900, 3, 31), 20, 9);
    let pool2 = WorkerPool::new(2);
    let reference = bucket_phase_shapes(&wg, &pool2, 64);
    assert!(!reference.is_empty());
    for grain in [1usize, 64, 1_000_000] {
        assert_eq!(
            bucket_phase_shapes(&wg, &pool2, grain),
            reference,
            "grain {grain} on the worker pool changed the phase structure"
        );
        assert_eq!(
            bucket_phase_shapes(&wg, &ScopedExecutor::new(2), grain),
            reference,
            "grain {grain} on the scoped executor changed the phase structure"
        );
    }
    let pool4 = WorkerPool::new(4);
    assert_eq!(
        bucket_phase_shapes(&wg, &pool4, 1),
        reference,
        "4 worker threads changed the phase structure"
    );
}
