//! Ablation: the hybrid SV kernel the paper's Section 6.2 suggests.
//!
//! Sweeps the fixed switch iteration from "always branch-avoiding" to
//! "always branch-based" and reports the modelled total time per machine, so
//! the best switch point (the crossover the paper observes) can be read off
//! per (graph, machine) pair.

use bga_bench::harness::ExperimentContext;
use bga_bench::report::{print_csv_row, print_header, print_section, CsvField};
use bga_kernels::cc::instrumented::{
    sv_branch_avoiding_instrumented, sv_branch_based_instrumented,
};
use bga_perfmodel::timing::time_run;

fn main() {
    let ctx = ExperimentContext::from_env();
    print_section("Hybrid SV ablation: modelled cycles if the kernel switches from branch-avoiding to branch-based after k sweeps");
    print_header(&[
        "graph",
        "machine",
        "switch_after_sweeps",
        "modeled_total_cycles",
        "pure_branch_based_cycles",
        "pure_branch_avoiding_cycles",
    ]);

    for sg in &ctx.suite {
        let based = sv_branch_based_instrumented(&sg.graph);
        let avoiding = sv_branch_avoiding_instrumented(&sg.graph);
        let sweeps = based.iterations().max(avoiding.iterations());
        for machine in &ctx.machines {
            let based_cycles = time_run(&based.counters, machine).step_cycles;
            let avoiding_cycles = time_run(&avoiding.counters, machine).step_cycles;
            let total_based: f64 = based_cycles.iter().sum();
            let total_avoiding: f64 = avoiding_cycles.iter().sum();
            // A hybrid that runs branch-avoiding for the first k sweeps and
            // branch-based afterwards costs the sum of the corresponding
            // per-sweep cycles (both variants perform identical label work
            // per sweep, so the composition is exact).
            for k in 0..=sweeps {
                let hybrid: f64 = avoiding_cycles.iter().take(k).sum::<f64>()
                    + based_cycles.iter().skip(k).sum::<f64>();
                print_csv_row(&[
                    CsvField::Str(sg.name()),
                    CsvField::Str(machine.name),
                    CsvField::Int(k as u64),
                    CsvField::Float(hybrid),
                    CsvField::Float(total_based),
                    CsvField::Float(total_avoiding),
                ]);
            }
        }
    }
}
