//! `bga trace`: work with `bga-trace-v1` JSONL documents.
//!
//! The kernel subcommands write one with `--threads N --trace out.jsonl`.
//! `bga trace report <file>` renders the run header, the per-phase table,
//! the worker-pool metrics and the paper's misprediction-bound crossover
//! summary; `bga trace validate <file>` checks the stream invariants
//! (run-start header, consecutive phase indices, totals that sum) and is
//! the CI smoke gate for the traced paths.

use bga_obs::{parse_trace, phase_table, validate_trace, JsonlSink, TraceReport};
use bga_perfmodel::bounds::{
    bfs_misprediction_lower_bound, bfs_misprediction_upper_bound, ratio_to_bound,
    sv_misprediction_lower_bound,
};
use std::fs;
use std::fs::File;
use std::io::{BufWriter, Write};

/// The sink the kernel commands write `--trace` files through.
pub(super) type FileSink = JsonlSink<BufWriter<File>>;

/// Parses `--trace FILE`: `None` when the flag is absent. A bare
/// `--trace` with no path is an error, not a silently untraced run.
pub(super) fn parse_trace_path(args: &[String]) -> Result<Option<&str>, String> {
    match super::common_args::flag_value(args, "--trace") {
        None if args.iter().any(|a| a == "--trace") => {
            Err("--trace requires an output file path".to_string())
        }
        other => Ok(other),
    }
}

/// Opens `path` for writing and wraps it in a [`JsonlSink`].
pub(super) fn open_trace_sink(path: &str) -> Result<FileSink, String> {
    let file = File::create(path).map_err(|e| format!("cannot create trace file {path}: {e}"))?;
    Ok(JsonlSink::new(BufWriter::new(file)))
}

/// Finishes a `--trace` sink, surfacing any write error the sink
/// swallowed mid-run, and reports the written file.
pub(super) fn finish_trace_sink(path: &str, sink: FileSink) -> Result<(), String> {
    sink.finish()
        .and_then(|mut writer| writer.flush())
        .map_err(|e| format!("writing trace file {path}: {e}"))?;
    println!("trace written: {path}");
    Ok(())
}

/// Runs the `trace` subcommand family.
pub fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(|s| s.as_str()) {
        Some("report") => report(&args[1..]),
        Some("validate") => validate(&args[1..]),
        Some(other) => Err(format!(
            "unknown trace action {other:?} (expected report or validate)"
        )),
        None => {
            Err("trace needs an action (report <trace.jsonl> | validate <trace.jsonl>)".to_string())
        }
    }
}

/// Reads, parses and validates a trace document.
fn load_report(path: &str) -> Result<TraceReport, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let events = parse_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    validate_trace(&events).map_err(|e| format!("{path}: {e}"))
}

fn validate(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("trace validate needs exactly one file: <trace.jsonl>".to_string());
    };
    let report = load_report(path)?;
    println!(
        "{path}: ok ({}/{}, {} phases, {} pool batches, totals consistent)",
        report.kernel,
        report.variant,
        report.phases.len(),
        report.pool_batches
    );
    Ok(())
}

fn report(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("trace report needs exactly one file: <trace.jsonl>".to_string());
    };
    let report = load_report(path)?;
    println!("kernel: {} ({})", report.kernel, report.variant);
    println!(
        "graph: {} vertices, {} edge slots",
        report.vertices, report.edges
    );
    if let Some(fp) = &report.footprint {
        println!(
            "footprint: {} representation, {} adjacency + {} index = {} bytes \
             ({:.2}x vs raw CSR)",
            fp.representation,
            fp.adjacency_bytes,
            fp.index_bytes,
            fp.total_bytes(),
            fp.ratio()
        );
    }
    print!("threads: {}; grain: {}", report.threads, report.grain);
    if let Some(delta) = report.delta {
        print!("; delta: {delta}");
    }
    if let Some(root) = report.root {
        print!("; root: {root}");
    }
    println!();
    println!(
        "phases: {}; wall clock: {:.3} ms",
        report.phases.len(),
        report.wall_ns as f64 / 1e6
    );
    print!("{}", phase_table(&report.phases).render());
    if let Some(decision) = &report.decision {
        println!(
            "advisor: chose {} after phase {} ({}; sampled {} phases: \
             {} edges, {} updates, misprediction bound {})",
            decision.variant,
            decision.phase,
            if decision.switched {
                "switched"
            } else {
                "stayed"
            },
            decision.sampled,
            decision.edges,
            decision.updates,
            decision.mispredictions,
        );
    }
    if let Some(pool) = report.pool {
        println!(
            "pool: {} batches, {} parks, {} wakes; max imbalance {:.2}",
            pool.batches, pool.parks, pool.wakes, report.max_imbalance
        );
    }
    print_bound_summary(&report);
    Ok(())
}

/// The variant-crossover summary: measured mispredictions against the
/// paper's analytical bounds (Sections 4-5). A branch-avoiding run sits
/// near the lower bound — the mispredictions no discipline can avoid —
/// while a branch-based run pays up to the upper bound; the gap, priced
/// against the conditional moves the avoiding variant issues instead, is
/// what decides the crossover.
fn print_bound_summary(report: &TraceReport) {
    let measured = report.totals.mispredictions;
    let cmovs = report.totals.conditional_moves;
    match report.kernel.as_str() {
        // Level-synchronous traversals: the BFS bounds apply, with |V̂| =
        // the root plus every per-level discovery.
        "bfs" | "sssp" => {
            let found = 1 + report
                .phases
                .iter()
                .map(|phase| phase.discovered)
                .sum::<usize>();
            let lower = bfs_misprediction_lower_bound(found);
            let upper = bfs_misprediction_upper_bound(found);
            println!("misprediction bounds (BFS model, {found} vertices found):");
            println!(
                "  measured: {measured} ({:.2}x the lower bound)",
                ratio_to_bound(measured, lower)
            );
            println!("  lower bound: {lower}; branch-based upper bound: {upper}");
            println!(
                "  crossover: branch-avoiding trades up to {} avoidable mispredictions \
                 for {cmovs} conditional moves",
                upper.saturating_sub(lower)
            );
        }
        "cc" => {
            let sweeps = report.phases.len();
            let lower = sv_misprediction_lower_bound(report.vertices, sweeps);
            println!("misprediction bounds (SV model, {sweeps} sweeps):");
            println!(
                "  measured: {measured} ({:.2}x the lower bound)",
                ratio_to_bound(measured, lower)
            );
            println!("  lower bound: {lower}");
            println!(
                "  crossover: branch-avoiding replaces the hook's data-dependent \
                 branch with {cmovs} conditional moves"
            );
        }
        other => {
            println!(
                "misprediction bounds: no analytical bound for kernel {other:?} \
                 (measured {measured}, conditional moves {cmovs})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bga_graph::generators::{grid_2d, MeshStencil};
    use bga_parallel::request::{run_bfs, run_components, run_sssp_unit};
    use bga_parallel::{BfsStrategy, RunConfig, Variant};

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn write_temp(name: &str, content: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("bga_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    /// Runs a real traced kernel into a byte buffer and lands it on disk.
    fn real_trace(name: &str, kernel: &str) -> std::path::PathBuf {
        let graph = grid_2d(8, 8, MeshStencil::VonNeumann);
        let sink = JsonlSink::new(Vec::new());
        let config = RunConfig::new().threads(2).traced(&sink);
        match kernel {
            "cc" => {
                run_components(&graph, Variant::BranchBased, &config);
            }
            "bfs" => {
                run_bfs(
                    &graph,
                    0,
                    BfsStrategy::Plain(Variant::BranchAvoiding),
                    &config,
                );
            }
            "sssp" => {
                run_sssp_unit(&graph, 0, Variant::BranchAvoiding, &config);
            }
            other => panic!("no traced fixture for {other}"),
        }
        write_temp(name, &sink.finish().unwrap())
    }

    #[test]
    fn validates_and_reports_real_traces() {
        for kernel in ["cc", "bfs", "sssp"] {
            let path = real_trace(&format!("{kernel}.jsonl"), kernel);
            let args = |action: &str| strings(&[action, path.to_str().unwrap()]);
            assert!(run(&args("validate")).is_ok(), "{kernel} validate failed");
            assert!(run(&args("report")).is_ok(), "{kernel} report failed");
        }
    }

    #[test]
    fn auto_traces_report_the_advisor_decision() {
        let graph = grid_2d(8, 8, MeshStencil::VonNeumann);
        let sink = JsonlSink::new(Vec::new());
        let config = RunConfig::new().threads(2).traced(&sink);
        run_bfs(&graph, 0, BfsStrategy::Plain(Variant::Auto), &config);
        let path = write_temp("auto.jsonl", &sink.finish().unwrap());
        let report = load_report(path.to_str().unwrap()).unwrap();
        let decision = report.decision.expect("auto run emits a decision event");
        assert!(decision.sampled > 0);
        assert!(!decision.variant.is_empty());
        let args = |action: &str| strings(&[action, path.to_str().unwrap()]);
        assert!(run(&args("validate")).is_ok());
        assert!(run(&args("report")).is_ok());
    }

    #[test]
    fn truncated_traces_are_rejected() {
        let path = real_trace("whole.jsonl", "cc");
        let text = std::fs::read_to_string(&path).unwrap();
        // Drop the run-end trailer: validation must fail.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        let truncated = write_temp("truncated.jsonl", lines.join("\n").as_bytes());
        let err = run(&strings(&["validate", truncated.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("run-end"), "{err}");
        // Garbage lines name their line number.
        let garbled = write_temp("garbled.jsonl", b"not json\n");
        let err = run(&strings(&["report", garbled.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn bad_usage_fails_loudly() {
        assert!(run(&[]).is_err());
        assert!(run(&strings(&["render", "x.jsonl"])).is_err());
        assert!(run(&strings(&["report"])).is_err());
        assert!(run(&strings(&["validate", "a.jsonl", "b.jsonl"])).is_err());
        assert!(run(&strings(&["validate", "/no/such/file.jsonl"])).is_err());
    }

    #[test]
    fn trace_flag_parsing() {
        assert_eq!(
            parse_trace_path(&strings(&["g", "--trace", "out.jsonl"])).unwrap(),
            Some("out.jsonl")
        );
        assert_eq!(parse_trace_path(&strings(&["g"])).unwrap(), None);
        assert!(parse_trace_path(&strings(&["g", "--trace"])).is_err());
    }
}
