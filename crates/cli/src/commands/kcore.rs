//! `bga kcore`: run a k-core decomposition and print the core structure.
//!
//! Without `--threads` the sequential Batagelj–Zaveršnik bucket peeling
//! runs; with `--threads N` the parallel concurrent-peeling kernel runs in
//! the requested hooking discipline (`--variant branch-based` tests and
//! CAS-decrements each neighbour's degree, `branch-avoiding` issues one
//! unconditional `fetch_sub` per edge with a predicated enqueue). Core
//! numbers are identical in every mode.

use super::common_args::CommonArgs;
use super::graph_input::{footprint_line, load_graph};
use super::CliError;
use bga_graph::AdjacencySource;
use bga_kernels::kcore::{kcore_peeling, CoreDecomposition};
use bga_obs::step_table;
use bga_parallel::request::run_kcore;
use bga_parallel::{resolve_threads, Variant};
use std::time::Instant;

/// Runs the `kcore` subcommand.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let Some(graph_spec) = args.first() else {
        return Err("kcore needs a graph".into());
    };
    let common = CommonArgs::parse(args)?;
    let variant = common.variant_or("branch-avoiding");
    let kcore_variant: Variant = variant.parse().map_err(|_| {
        format!(
            "unknown kcore variant {variant:?} (expected branch-based, branch-avoiding or auto)"
        )
    })?;
    // The sequential reference is bucket peeling — neither hooking
    // discipline. Reject an explicit variant request it could not honour.
    if common.threads.is_none() && common.variant.is_some() {
        return Err(
            "the sequential run is the bucket-peeling reference; add --threads N \
             to pick a branch-based or branch-avoiding parallel peel"
                .into(),
        );
    }
    if common.threads.is_none() && common.instrumented {
        return Err("--instrumented requires --threads N (parallel peels only)".into());
    }

    let graph = load_graph(graph_spec)?;
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    if let Some(t) = common.threads {
        // Report the resolved worker count before the timed region so the
        // stdout write does not bias sequential-vs-parallel wall clocks.
        println!("threads: {}", resolve_threads(t));
        let start = Instant::now();
        let (run, outcome) = match common.trace_path {
            Some(path) => {
                let sink = super::trace::open_trace_sink(path)?;
                let run = run_kcore(&graph, kcore_variant, &common.run_config().traced(&sink));
                super::trace::finish_trace_sink(path, sink)?;
                run
            }
            None => run_kcore(&graph, kcore_variant, &common.run_config()),
        };
        let elapsed = start.elapsed();
        print_full_or_partial_summary(variant, &run.cores, &outcome);
        println!("cascade rounds: {}", run.rounds);
        if common.instrumented {
            println!("{}", footprint_line(&graph.footprint()));
            println!("totals: {}", run.counters.total());
            print!("{}", step_table("dispatch", &run.counters.steps).render());
        } else if common.trace_path.is_none() {
            println!("wall clock: {:.3} ms", elapsed.as_secs_f64() * 1e3);
        }
        return super::check_deadline(&outcome);
    }

    let start = Instant::now();
    let cores = kcore_peeling(&graph);
    let elapsed = start.elapsed();
    print_core_summary("peeling", &cores);
    println!("wall clock: {:.3} ms", elapsed.as_secs_f64() * 1e3);
    Ok(())
}

/// The cancellable paths' summary: a completed peel prints the usual core
/// structure; an interrupted one reports the peeled prefix instead — the
/// unpeeled vertices still carry the `u32::MAX` "not yet peeled" marker,
/// so the degeneracy/histogram view would be meaningless (and huge).
fn print_full_or_partial_summary(
    variant: &str,
    cores: &CoreDecomposition,
    outcome: &bga_parallel::RunOutcome,
) {
    if outcome.is_completed() {
        print_core_summary(variant, cores);
    } else {
        let peeled = cores.as_slice().iter().filter(|&&c| c != u32::MAX).count();
        println!("variant: {variant}");
        println!(
            "peeled: {peeled} of {} vertices (final core numbers; the rest interrupted)",
            cores.len()
        );
    }
}

fn print_core_summary(variant: &str, cores: &CoreDecomposition) {
    println!("variant: {variant}");
    println!("degeneracy: {}", cores.degeneracy());
    let histogram = cores.histogram();
    let shown = histogram.len().min(8);
    let rendered: Vec<String> = histogram[..shown]
        .iter()
        .enumerate()
        .map(|(k, count)| format!("{k}:{count}"))
        .collect();
    let suffix = if histogram.len() > shown { " …" } else { "" };
    println!("coreness histogram: {}{suffix}", rendered.join(" "));
    println!(
        "innermost core: {} vertices at k = {}",
        cores.k_core_size(cores.degeneracy()),
        cores.degeneracy()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn runs_sequential_and_parallel_on_a_builtin_graph() {
        assert!(run(&strings(&["cond-mat-2005"])).is_ok());
        for variant in ["branch-based", "branch-avoiding", "auto"] {
            assert!(
                run(&strings(&[
                    "cond-mat-2005",
                    "--variant",
                    variant,
                    "--threads",
                    "2"
                ]))
                .is_ok(),
                "{variant} with --threads failed"
            );
        }
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--instrumented"
        ]))
        .is_ok());
    }

    #[test]
    fn trace_flag_writes_a_jsonl_document() {
        let dir = std::env::temp_dir().join("bga_cli_kcore_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kcore.jsonl");
        let path_str = path.to_str().unwrap();
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--trace",
            path_str
        ]))
        .is_ok());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().next().unwrap().contains("bga-trace-v1"));
        assert!(run(&strings(&["cond-mat-2005", "--trace", path_str])).is_err());
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--instrumented",
            "--trace",
            path_str
        ]))
        .is_err());
    }

    #[test]
    fn timeout_flag_bounds_the_parallel_peel() {
        use super::super::CliError;
        assert_eq!(
            run(&strings(&[
                "cond-mat-2005",
                "--threads",
                "2",
                "--timeout-ms",
                "60000"
            ])),
            Ok(())
        );
        assert_eq!(
            run(&strings(&[
                "cond-mat-2005",
                "--threads",
                "2",
                "--timeout-ms",
                "0"
            ])),
            Err(CliError::DeadlineExpired)
        );
        // A deadline needs the parallel peel and excludes --instrumented.
        assert!(run(&strings(&["cond-mat-2005", "--timeout-ms", "5"])).is_err());
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--instrumented",
            "--timeout-ms",
            "5"
        ]))
        .is_err());
        // A timed-out traced run still writes an interrupted trace.
        let dir = std::env::temp_dir().join("bga_cli_kcore_timeout");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kcore.jsonl");
        assert_eq!(
            run(&strings(&[
                "cond-mat-2005",
                "--threads",
                "2",
                "--timeout-ms",
                "0",
                "--trace",
                path.to_str().unwrap()
            ])),
            Err(CliError::DeadlineExpired)
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"interrupted\""));
    }

    #[test]
    fn bad_usage_fails_loudly() {
        assert!(run(&[]).is_err());
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--variant",
            "sideways",
            "--threads",
            "2"
        ]))
        .is_err());
        // Sequential runs are the peeling reference: an explicit variant
        // or --instrumented without --threads is an error.
        assert!(run(&strings(&["cond-mat-2005", "--variant", "branch-avoiding"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--variant", "auto"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--instrumented"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--threads"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--threads", "x"])).is_err());
    }
}
