//! Runtime variant advisor: picks branch-based vs branch-avoiding from a
//! short instrumented prefix of a run.
//!
//! The paper's crossover argument (Sections 4-5) says the branch-avoiding
//! variant wins exactly when the mispredictions it removes cost more than
//! the atomics it adds. A parallel run can measure both sides of that
//! inequality live: the engine's tally counters report, per phase, how many
//! visited/improvement tests executed (`edges`) and how many of them
//! succeeded (`updates`). The [`VariantAdvisor`] accumulates those counters
//! for the first few phases of a run and then emits a [`VariantDecision`];
//! the engine switches discipline at the next phase boundary. Switching is
//! correctness-free because both variants maintain the same monotone atomic
//! state — only the claim discipline differs.
//!
//! The decision rule is pure integer arithmetic over the accumulated tallies
//! (no clocks, no floats), so the same tally stream always produces the same
//! decision at the same phase — a property the cross-validation tests pin.
//!
//! ```
//! use bga_perfmodel::advisor::{AdvisorConfig, ChosenVariant, VariantAdvisor};
//!
//! let mut advisor = VariantAdvisor::new(AdvisorConfig::default());
//! // A frontier where nearly every visited test fails: classic
//! // mispredict-heavy territory, so branch-avoiding should win.
//! assert!(advisor.record_phase(10_000, 4_000).is_none());
//! assert!(advisor.record_phase(20_000, 9_000).is_none());
//! let decision = advisor.record_phase(30_000, 14_000).unwrap();
//! assert_eq!(decision.choice, ChosenVariant::BranchAvoiding);
//! ```

/// Tuning knobs of the advisor's crossover rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdvisorConfig {
    /// How many instrumented phases to sample before deciding. The first
    /// phases of a traversal are the cheapest to instrument (small
    /// frontiers) and already show the update ratio the rest of the run
    /// will have.
    pub sample_phases: usize,
    /// Modelled cost of one branch misprediction, in abstract cycle units
    /// (a deep out-of-order pipeline flush; Table 1's models use 14-16).
    pub miss_cost: u64,
    /// Modelled extra cost of one unconditional atomic over the branch-based
    /// variant's predicted-not-taken test, in the same units.
    pub atomic_cost: u64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            sample_phases: 3,
            miss_cost: 16,
            atomic_cost: 3,
        }
    }
}

/// The variant the advisor picked for the remainder of the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChosenVariant {
    /// Keep testing before claiming (test-and-test-and-set discipline).
    BranchBased,
    /// Claim unconditionally with `fetch_min`/`fetch_sub`.
    BranchAvoiding,
}

impl ChosenVariant {
    /// The variant's canonical flag spelling (`"branch-based"` /
    /// `"branch-avoiding"`), as traces and CLI flags spell it.
    pub fn as_str(self) -> &'static str {
        match self {
            ChosenVariant::BranchBased => "branch-based",
            ChosenVariant::BranchAvoiding => "branch-avoiding",
        }
    }
}

/// One instrumented phase's contribution to the advisor: how many
/// visited/improvement tests ran and how many succeeded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseSample {
    /// Data-dependent tests executed (one per edge relaxation attempted).
    pub edges: u64,
    /// Tests that succeeded (claims / improvements won).
    pub updates: u64,
}

/// The advisor's verdict, emitted once per run after the sampling prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VariantDecision {
    /// The variant predicted fastest for the rest of the run.
    pub choice: ChosenVariant,
    /// Phases actually sampled before deciding.
    pub sampled: usize,
    /// Total data-dependent tests across the sampled phases.
    pub edges: u64,
    /// Total successful updates across the sampled phases.
    pub updates: u64,
    /// The misprediction bound the rule charged the branch-based variant:
    /// `min(edges, 2 * updates)` (a 2-bit predictor misses at most twice
    /// per taken transition, and never more than once per test).
    pub mispredictions: u64,
}

/// Accumulates per-phase tally samples and applies the crossover rule.
///
/// Feed it one [`record_phase`](VariantAdvisor::record_phase) call per
/// completed instrumented phase; after
/// [`AdvisorConfig::sample_phases`] phases it returns `Some(decision)`
/// exactly once and ignores further samples.
#[derive(Clone, Debug)]
pub struct VariantAdvisor {
    config: AdvisorConfig,
    sampled: usize,
    edges: u64,
    updates: u64,
    decided: bool,
}

impl VariantAdvisor {
    /// A fresh advisor with the given rule parameters.
    pub fn new(config: AdvisorConfig) -> Self {
        VariantAdvisor {
            config: AdvisorConfig {
                // Deciding on zero samples would make every run switch on
                // no evidence; clamp to at least one phase.
                sample_phases: config.sample_phases.max(1),
                ..config
            },
            sampled: 0,
            edges: 0,
            updates: 0,
            decided: false,
        }
    }

    /// Records one completed instrumented phase and, on the configured
    /// phase, returns the decision. Returns `None` while still sampling and
    /// after the decision has been emitted.
    pub fn record_phase(&mut self, edges: u64, updates: u64) -> Option<VariantDecision> {
        if self.decided {
            return None;
        }
        self.sampled += 1;
        self.edges = self.edges.saturating_add(edges);
        self.updates = self.updates.saturating_add(updates);
        if self.sampled < self.config.sample_phases {
            return None;
        }
        self.decided = true;
        Some(self.decide())
    }

    /// Whether the advisor has already emitted its decision.
    pub fn decided(&self) -> bool {
        self.decided
    }

    fn decide(&self) -> VariantDecision {
        let mispredictions = predicted_mispredictions(self.edges, self.updates);
        let choice = if branch_avoiding_wins(
            self.edges,
            self.updates,
            self.config.miss_cost,
            self.config.atomic_cost,
        ) {
            ChosenVariant::BranchAvoiding
        } else {
            ChosenVariant::BranchBased
        };
        VariantDecision {
            choice,
            sampled: self.sampled,
            edges: self.edges,
            updates: self.updates,
            mispredictions,
        }
    }
}

/// Upper bound on branch-based mispredictions over `edges` data-dependent
/// tests of which `updates` succeeded: a 2-bit predictor parked in
/// not-taken misses at most twice per successful (taken) test, and can
/// never miss more often than the tests execute.
pub fn predicted_mispredictions(edges: u64, updates: u64) -> u64 {
    edges.min(updates.saturating_mul(2))
}

/// The crossover rule: branch-avoiding wins when the modelled misprediction
/// cost the branch-based variant pays exceeds the modelled atomic premium
/// the branch-avoiding variant pays on every test.
///
/// `predicted_mispredictions(edges, updates) * miss_cost > edges * atomic_cost`,
/// evaluated in `u128` so graph-scale counters cannot overflow.
pub fn branch_avoiding_wins(edges: u64, updates: u64, miss_cost: u64, atomic_cost: u64) -> bool {
    let miss_side = u128::from(predicted_mispredictions(edges, updates)) * u128::from(miss_cost);
    let atomic_side = u128::from(edges) * u128::from(atomic_cost);
    miss_side > atomic_side
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_heavy_prefix_picks_branch_avoiding() {
        let mut advisor = VariantAdvisor::new(AdvisorConfig::default());
        assert!(advisor.record_phase(100, 40).is_none());
        assert!(advisor.record_phase(200, 90).is_none());
        let decision = advisor.record_phase(300, 140).unwrap();
        assert_eq!(decision.choice, ChosenVariant::BranchAvoiding);
        assert_eq!(decision.sampled, 3);
        assert_eq!(decision.edges, 600);
        assert_eq!(decision.updates, 270);
        assert_eq!(decision.mispredictions, 540);
        assert!(advisor.decided());
        // Further phases are ignored once the decision is out.
        assert!(advisor.record_phase(1_000_000, 0).is_none());
    }

    #[test]
    fn update_starved_prefix_stays_branch_based() {
        // Almost no test succeeds: the predictor parks in not-taken and the
        // branch-based variant barely mispredicts, so paying the atomic
        // premium on every edge would lose.
        let mut advisor = VariantAdvisor::new(AdvisorConfig::default());
        advisor.record_phase(10_000, 10);
        advisor.record_phase(20_000, 20);
        let decision = advisor.record_phase(30_000, 30).unwrap();
        assert_eq!(decision.choice, ChosenVariant::BranchBased);
        assert_eq!(decision.mispredictions, 120);
    }

    #[test]
    fn crossover_sits_where_the_costs_balance() {
        let config = AdvisorConfig::default();
        // With miss_cost 16 and atomic_cost 3, the break-even update ratio
        // is updates/edges = 3/32. Just below stays based, just above
        // switches.
        let edges = 3200;
        assert!(!branch_avoiding_wins(
            edges,
            300,
            config.miss_cost,
            config.atomic_cost
        ));
        assert!(branch_avoiding_wins(
            edges,
            301,
            config.miss_cost,
            config.atomic_cost
        ));
    }

    #[test]
    fn misprediction_bound_is_capped_by_edges() {
        // Every test succeeding cannot miss more than once per test.
        assert_eq!(predicted_mispredictions(100, 100), 100);
        assert_eq!(predicted_mispredictions(100, 10), 20);
        assert_eq!(predicted_mispredictions(0, 0), 0);
    }

    #[test]
    fn zero_sample_config_is_clamped_to_one_phase() {
        let mut advisor = VariantAdvisor::new(AdvisorConfig {
            sample_phases: 0,
            ..AdvisorConfig::default()
        });
        let decision = advisor.record_phase(10, 10).unwrap();
        assert_eq!(decision.sampled, 1);
    }

    #[test]
    fn huge_counters_do_not_overflow() {
        assert!(branch_avoiding_wins(u64::MAX, u64::MAX, u64::MAX, 1));
        let mut advisor = VariantAdvisor::new(AdvisorConfig {
            sample_phases: 2,
            ..AdvisorConfig::default()
        });
        advisor.record_phase(u64::MAX, u64::MAX);
        let decision = advisor.record_phase(u64::MAX, u64::MAX).unwrap();
        assert_eq!(decision.edges, u64::MAX); // saturated, not wrapped
    }

    #[test]
    fn identical_streams_decide_identically() {
        // Determinism pin: the rule is pure integer arithmetic.
        let stream = [(123, 45), (678, 90), (1011, 121), (314, 15)];
        let run = |config: AdvisorConfig| {
            let mut advisor = VariantAdvisor::new(config);
            let mut decisions = Vec::new();
            for (index, (edges, updates)) in stream.iter().enumerate() {
                if let Some(decision) = advisor.record_phase(*edges, *updates) {
                    decisions.push((index, decision));
                }
            }
            decisions
        };
        let config = AdvisorConfig::default();
        assert_eq!(run(config), run(config));
        assert_eq!(run(config).len(), 1);
    }
}
