//! Figure 4: Shiloach-Vishkin branches per iteration (branch-based vs
//! branch-avoiding) and the total branch ratio per graph.

use bga_bench::figures::{counter_figure, CounterMetric, Kernel};
use bga_bench::harness::ExperimentContext;

fn main() {
    let ctx = ExperimentContext::from_env();
    counter_figure(&ctx, "Figure 4", Kernel::Sv, CounterMetric::Branches);
}
