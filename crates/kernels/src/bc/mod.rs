//! Betweenness centrality (extension).
//!
//! The paper's introduction lists betweenness centrality among the
//! algorithm families its findings should extend to. This module provides
//! Brandes' exact algorithm for unweighted graphs in two forms:
//!
//! * [`brandes::betweenness_centrality`] — the classic implementation whose
//!   forward phase is the branch-based top-down BFS of paper Algorithm 4
//!   (per-edge `if` branches for the distance test and the shortest-path
//!   counting test);
//! * [`brandes::betweenness_centrality_branch_avoiding`] — the same
//!   algorithm with both per-edge tests converted to branch-free selects,
//!   mirroring the paper's SV/BFS transformation.
//! * [`brandes::betweenness_centrality_sources`] — the un-normalized
//!   accumulation over an explicit source set, the reference the parallel
//!   crate's sampled-source runs cross-validate against.
//!
//! All produce consistent centrality scores; tests cross-validate them
//! against a brute-force all-pairs shortest-path counter on small graphs.

pub mod brandes;

pub use brandes::{
    betweenness_centrality, betweenness_centrality_branch_avoiding, betweenness_centrality_sources,
};
