//! `bga bfs`: run a BFS variant from a root and print a summary.

use super::common_args::{flag_value, CommonArgs};
use super::graph_input::{footprint_line, load_graph};
use super::CliError;
use bga_graph::properties::largest_component;
use bga_graph::AdjacencySource;
use bga_kernels::bfs::{
    bfs_branch_avoiding, bfs_branch_avoiding_instrumented, bfs_branch_based,
    bfs_branch_based_instrumented,
    bottom_up::bfs_bottom_up,
    direction_optimizing::{bfs_direction_optimizing, DirectionConfig},
    frontier::check_bfs_invariants,
    BfsResult,
};
use bga_obs::step_table;
use bga_parallel::request::run_bfs;
use bga_parallel::{resolve_threads, BfsStrategy, Variant};
use std::time::Instant;

/// Parses `--strategy`: the direction policy for the direction-optimizing
/// traversal. `None` when the flag is absent.
fn parse_strategy(args: &[String]) -> Result<Option<DirectionConfig>, String> {
    match flag_value(args, "--strategy") {
        None if args.iter().any(|a| a == "--strategy") => {
            Err("--strategy requires a value (auto, top-down or bottom-up)".to_string())
        }
        None => Ok(None),
        Some("auto") => Ok(Some(DirectionConfig::default())),
        Some("top-down") => Ok(Some(DirectionConfig::always_top_down())),
        Some("bottom-up") => Ok(Some(DirectionConfig::always_bottom_up())),
        Some(other) => Err(format!(
            "unknown strategy {other:?} (expected auto, top-down or bottom-up)"
        )),
    }
}

/// Runs the `bfs` subcommand.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let Some(graph_spec) = args.first() else {
        return Err("bfs needs a graph".into());
    };
    let common = CommonArgs::parse(args)?;
    let strategy = parse_strategy(args)?;
    // `--strategy` implies the direction-optimizing traversal; `--variant`
    // keeps selecting among the classic kernels otherwise.
    let default_variant = if strategy.is_some() {
        "direction-optimizing"
    } else {
        "branch-based"
    };
    let variant = common.variant_or(default_variant);
    if strategy.is_some() && variant != "direction-optimizing" {
        return Err(format!(
            "--strategy applies to the direction-optimizing variant, not {variant:?}"
        )
        .into());
    }

    let graph = load_graph(graph_spec)?;
    let root = match flag_value(args, "--root") {
        Some(text) => text
            .parse::<u32>()
            .map_err(|e| format!("invalid --root value {text:?}: {e}"))?,
        None => largest_component(&graph).first().copied().unwrap_or(0),
    };
    println!(
        "graph: {} vertices, {} edges; root: {root}",
        graph.num_vertices(),
        graph.num_edges()
    );

    if let Some(t) = common.threads {
        let requested: BfsStrategy = match variant {
            "branch-based" => BfsStrategy::Plain(Variant::BranchBased),
            "branch-avoiding" => BfsStrategy::Plain(Variant::BranchAvoiding),
            "auto" => BfsStrategy::Plain(Variant::Auto),
            "direction-optimizing" => {
                BfsStrategy::DirectionOptimizing(strategy.unwrap_or_default())
            }
            other => {
                return Err(format!(
                    "--threads supports branch-based, branch-avoiding, auto and \
                     direction-optimizing, not {other:?}"
                )
                .into())
            }
        };
        // Report the resolved worker count before the timed region so the
        // stdout write does not bias sequential-vs-parallel wall clocks.
        println!("threads: {}", resolve_threads(t));
        let start = Instant::now();
        let (par, outcome) = match common.trace_path {
            Some(path) => {
                let sink = super::trace::open_trace_sink(path)?;
                let run = run_bfs(&graph, root, requested, &common.run_config().traced(&sink));
                super::trace::finish_trace_sink(path, sink)?;
                run
            }
            None => run_bfs(&graph, root, requested, &common.run_config()),
        };
        let elapsed = start.elapsed();
        // An interrupted traversal is a valid prefix, not a full BFS; the
        // invariant checker only applies to completed runs.
        if outcome.is_completed() {
            check_bfs_invariants(&graph, root, &par.result)?;
        }
        print_result_summary(variant, &par.result);
        if variant == "direction-optimizing" {
            println!(
                "directions: {} top-down, {} bottom-up levels",
                par.directions.len() - par.bottom_up_levels(),
                par.bottom_up_levels()
            );
        }
        if common.instrumented {
            println!("{}", footprint_line(&graph.footprint()));
            println!("totals: {}", par.counters.total());
            print!("{}", step_table("level", &par.counters.steps).render());
        } else if common.trace_path.is_none() {
            println!("wall clock: {:.3} ms", elapsed.as_secs_f64() * 1e3);
        }
        return super::check_deadline(&outcome);
    }

    if common.instrumented {
        let run = match variant {
            "branch-based" => bfs_branch_based_instrumented(&graph, root),
            "branch-avoiding" => bfs_branch_avoiding_instrumented(&graph, root),
            other => {
                return Err(format!(
                    "--instrumented supports branch-based, branch-avoiding and \
                     direction-optimizing --threads, not {other:?}"
                )
                .into())
            }
        };
        print_result_summary(variant, &run.result);
        println!("{}", footprint_line(&graph.footprint()));
        println!("totals: {}", run.counters.total());
        print!("{}", step_table("level", &run.counters.steps).render());
        return Ok(());
    }

    let config = strategy.unwrap_or_default();
    let start = Instant::now();
    let result: BfsResult = match variant {
        "branch-based" => bfs_branch_based(&graph, root),
        "branch-avoiding" => bfs_branch_avoiding(&graph, root),
        "bottom-up" => bfs_bottom_up(&graph, root),
        "direction-optimizing" => bfs_direction_optimizing(&graph, root, config),
        "auto" => {
            return Err("--variant auto requires --threads N (runtime variant \
                 selection samples the parallel engine's phase tallies)"
                .into())
        }
        other => return Err(format!("unknown bfs variant {other:?}").into()),
    };
    let elapsed = start.elapsed();
    check_bfs_invariants(&graph, root, &result)?;
    print_result_summary(variant, &result);
    println!("wall clock: {:.3} ms", elapsed.as_secs_f64() * 1e3);
    Ok(())
}

fn print_result_summary(variant: &str, result: &BfsResult) {
    println!("variant: {variant}");
    println!("reached: {} vertices", result.reached_count());
    println!("levels: {}", result.level_count());
    println!("level sizes: {:?}", result.level_sizes());
}

#[cfg(test)]
mod tests {
    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn runs_every_uninstrumented_variant_on_a_builtin_graph() {
        for variant in [
            "branch-based",
            "branch-avoiding",
            "bottom-up",
            "direction-optimizing",
        ] {
            assert!(
                super::run(&strings(&["cond-mat-2005", "--variant", variant])).is_ok(),
                "{variant} failed"
            );
        }
        assert!(super::run(&strings(&["cond-mat-2005", "--variant", "nope"])).is_err());
        assert!(super::run(&strings(&["cond-mat-2005", "--root", "abc"])).is_err());
    }

    #[test]
    fn threads_flag_selects_the_parallel_kernels() {
        for variant in [
            "branch-based",
            "branch-avoiding",
            "direction-optimizing",
            "auto",
        ] {
            assert!(
                super::run(&strings(&[
                    "cond-mat-2005",
                    "--variant",
                    variant,
                    "--threads",
                    "2"
                ]))
                .is_ok(),
                "{variant} with --threads failed"
            );
        }
        assert!(super::run(&strings(&[
            "cond-mat-2005",
            "--variant",
            "branch-avoiding",
            "--threads",
            "2",
            "--instrumented"
        ]))
        .is_ok());
        assert!(super::run(&strings(&[
            "cond-mat-2005",
            "--variant",
            "bottom-up",
            "--threads",
            "2"
        ]))
        .is_err());
        // Runtime selection needs the parallel engine's phase tallies.
        assert!(super::run(&strings(&["cond-mat-2005", "--variant", "auto"])).is_err());
    }

    #[test]
    fn trace_flag_writes_a_jsonl_document() {
        let dir = std::env::temp_dir().join("bga_cli_bfs_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bfs.jsonl");
        let path_str = path.to_str().unwrap();
        for variant in ["branch-based", "branch-avoiding", "direction-optimizing"] {
            assert!(
                super::run(&strings(&[
                    "cond-mat-2005",
                    "--variant",
                    variant,
                    "--threads",
                    "2",
                    "--trace",
                    path_str
                ]))
                .is_ok(),
                "{variant} with --trace failed"
            );
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.lines().next().unwrap().contains("bga-trace-v1"));
        }
        assert!(super::run(&strings(&["cond-mat-2005", "--trace", path_str])).is_err());
        assert!(super::run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--instrumented",
            "--trace",
            path_str
        ]))
        .is_err());
        assert!(super::run(&strings(&[
            "cond-mat-2005",
            "--variant",
            "bottom-up",
            "--threads",
            "2",
            "--trace",
            path_str
        ]))
        .is_err());
    }

    #[test]
    fn timeout_flag_bounds_the_parallel_run() {
        use super::super::CliError;
        // Every parallel variant honours a generous deadline and expires
        // an already-passed one at the first level boundary.
        for variant in ["branch-based", "branch-avoiding", "direction-optimizing"] {
            assert_eq!(
                super::run(&strings(&[
                    "cond-mat-2005",
                    "--variant",
                    variant,
                    "--threads",
                    "2",
                    "--timeout-ms",
                    "60000"
                ])),
                Ok(()),
                "{variant} with a generous deadline failed"
            );
            assert_eq!(
                super::run(&strings(&[
                    "cond-mat-2005",
                    "--variant",
                    variant,
                    "--threads",
                    "2",
                    "--timeout-ms",
                    "0"
                ])),
                Err(CliError::DeadlineExpired),
                "{variant} with an expired deadline did not time out"
            );
        }
        // bottom-up has no parallel cancellable path; sequential runs and
        // instrumented runs have no deadline seam at all.
        assert!(super::run(&strings(&["cond-mat-2005", "--timeout-ms", "5"])).is_err());
        assert!(super::run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--instrumented",
            "--timeout-ms",
            "5"
        ]))
        .is_err());
        // A timed-out traced run still writes an interrupted trace.
        let dir = std::env::temp_dir().join("bga_cli_bfs_timeout");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bfs.jsonl");
        assert_eq!(
            super::run(&strings(&[
                "cond-mat-2005",
                "--threads",
                "2",
                "--timeout-ms",
                "0",
                "--trace",
                path.to_str().unwrap()
            ])),
            Err(CliError::DeadlineExpired)
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"interrupted\""));
    }

    #[test]
    fn strategy_flag_drives_the_direction_optimizing_traversal() {
        // The worked example from the README: auto strategy on all cores.
        for strategy in ["auto", "top-down", "bottom-up"] {
            assert!(
                super::run(&strings(&[
                    "cond-mat-2005",
                    "--threads",
                    "8",
                    "--strategy",
                    strategy
                ]))
                .is_ok(),
                "--strategy {strategy} failed"
            );
        }
        // Sequential direction-optimizing honours the strategy too.
        assert!(super::run(&strings(&["cond-mat-2005", "--strategy", "bottom-up"])).is_ok());
        // Instrumented direction-optimizing runs report real per-level
        // tallies for the bottom-up levels.
        assert!(super::run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--strategy",
            "bottom-up",
            "--instrumented"
        ]))
        .is_ok());
        // ... but only on the parallel path.
        assert!(super::run(&strings(&[
            "cond-mat-2005",
            "--variant",
            "direction-optimizing",
            "--instrumented"
        ]))
        .is_err());
        // Bad or conflicting usages fail loudly.
        assert!(super::run(&strings(&["cond-mat-2005", "--strategy", "sideways"])).is_err());
        assert!(super::run(&strings(&["cond-mat-2005", "--strategy"])).is_err());
        assert!(super::run(&strings(&[
            "cond-mat-2005",
            "--variant",
            "branch-based",
            "--strategy",
            "auto"
        ]))
        .is_err());
    }
}
