//! Graph file I/O.
//!
//! Two formats are supported:
//!
//! * **Edge list** — one `u v` pair per line, `#`/`%` comments. The common
//!   interchange format for SNAP and many web corpora.
//! * **METIS / DIMACS-10** — the format of the 10th DIMACS Implementation
//!   Challenge graphs the paper uses (Table 2), so the real `audikw1`,
//!   `auto`, `coAuthorsDBLP`, `cond-mat-2005` and `ldoor` files can be
//!   dropped in directly when available.
//! * **`bga-csr-v1` binary** — the delta-varint compressed representation
//!   serialized with an mmap-ready layout (see [`read_compressed_binary_file`]).

mod binary;
mod edge_list;
mod metis;

pub use binary::{
    read_compressed_binary_bytes, read_compressed_binary_file, write_compressed_binary,
    write_compressed_binary_bytes, write_compressed_binary_file, BGA_CSR_MAGIC, BGA_CSR_VERSION,
};
pub use edge_list::{
    read_edge_list, read_edge_list_str, read_weighted_edge_list, read_weighted_edge_list_str,
    write_edge_list, write_edge_list_string, write_weighted_edge_list,
    write_weighted_edge_list_string,
};
pub use metis::{
    read_metis, read_metis_str, read_weighted_metis, read_weighted_metis_str, write_metis,
    write_metis_string, write_weighted_metis, write_weighted_metis_string,
};

use std::fmt;
use std::io;

/// Debug-only I/O fault seam for the robustness suite. When the
/// `BGA_FAULT` spec (the same environment variable `bga-parallel`'s
/// fault-injection harness reads; checked as a plain substring here
/// because the dependency direction forbids sharing the parsed plan)
/// contains `io:short-read`, every file reader sees its input truncated
/// to half its bytes — simulating a short read / truncated download — so
/// the structured-error paths of the parsers are exercised against real
/// files. Compiles to the identity in release builds.
pub(crate) fn apply_read_faults(text: String) -> String {
    if cfg!(debug_assertions) {
        if let Ok(spec) = std::env::var("BGA_FAULT") {
            if spec.split(',').any(|part| part.trim() == "io:short-read") {
                let mut keep = text.len() / 2;
                while keep > 0 && !text.is_char_boundary(keep) {
                    keep -= 1;
                }
                return text[..keep].to_string();
            }
        }
    }
    text
}

/// Errors produced while reading or writing graph files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed; carries the 1-based line number and a
    /// description of the problem.
    Parse {
        /// 1-based line number where parsing failed (0 when the problem is
        /// global, e.g. too few vertex lines).
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, grid_2d, MeshStencil};

    #[test]
    fn edge_list_round_trip() {
        let g = barabasi_albert(120, 2, 3);
        let text = write_edge_list_string(&g);
        let back = read_edge_list_str(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn metis_round_trip() {
        let g = grid_2d(6, 7, MeshStencil::Moore);
        let text = write_metis_string(&g);
        let back = read_metis_str(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn formats_agree_with_each_other() {
        let g = barabasi_albert(80, 3, 9);
        let via_metis = read_metis_str(&write_metis_string(&g)).unwrap();
        let via_edges = read_edge_list_str(&write_edge_list_string(&g)).unwrap();
        assert_eq!(via_metis, via_edges);
    }

    #[test]
    fn weighted_formats_agree_with_each_other() {
        use crate::weighted::uniform_weights;
        let g = uniform_weights(&barabasi_albert(60, 2, 5), 20, 8);
        let via_metis = read_weighted_metis_str(&write_weighted_metis_string(&g)).unwrap();
        let via_edges = read_weighted_edge_list_str(&write_weighted_edge_list_string(&g)).unwrap();
        assert_eq!(via_metis, via_edges);
        assert_eq!(via_metis, g);
    }
}
