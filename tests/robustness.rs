//! Robustness integration suite, end-to-end through the public API:
//! cancellation tokens stop every engine loop at a phase boundary with
//! valid partial state, deadlines and phase budgets are respected,
//! interrupted monotone kernels (SV, weighted SSSP) resume to the exact
//! fixpoint an uninterrupted run reaches, and injected worker faults
//! (panics, deaths) never wedge the pool — it degrades to sequential
//! execution and still computes correct answers.
//!
//! The fault-injection seam compiles out of release builds
//! ([`FAULT_INJECTION`] is `cfg!(debug_assertions)`), so the injected
//! fault tests are `#[cfg(debug_assertions)]` like the pool's own.

use branch_avoiding_graphs::graph::generators::{erdos_renyi_gnm, grid_2d, MeshStencil};
use branch_avoiding_graphs::graph::properties::{
    bfs_distances_reference, connected_components_union_find,
};
use branch_avoiding_graphs::graph::transform::relabel_random;
use branch_avoiding_graphs::graph::weighted::uniform_weights;
use branch_avoiding_graphs::graph::CsrGraph;
use branch_avoiding_graphs::kernels::bc::betweenness_centrality_sources;
use branch_avoiding_graphs::kernels::kcore::kcore_peeling;
use branch_avoiding_graphs::kernels::sssp::sssp_delta_stepping;
use branch_avoiding_graphs::parallel::request::{
    run_betweenness, run_bfs, run_components, run_components_on, run_components_resumed, run_kcore,
    run_sssp_unit, run_sssp_weighted, run_sssp_weighted_resumed,
};
use branch_avoiding_graphs::parallel::{
    BfsStrategy, CancelToken, InterruptReason, RunConfig, RunOutcome, Variant,
};
use std::time::{Duration, Instant};

const THREADS: usize = 2;
const UNREACHED: u32 = u32::MAX;

/// The two-worker cancellable configuration every run here uses.
fn cancel_config(token: &CancelToken) -> RunConfig<'_> {
    RunConfig::new().threads(THREADS).cancel(token)
}

/// A multi-sweep, multi-level workload: a relabelled 2-D grid has a large
/// diameter (so BFS has many levels and SV needs several sweeps) without
/// being slow to traverse.
fn deep_graph() -> CsrGraph {
    relabel_random(&grid_2d(32, 32, MeshStencil::VonNeumann), 0xBAD5EED)
}

/// A denser generator graph for the fault-injection runs: enough edge
/// weight that every sweep fans out to the pool instead of running inline
/// (inline dispatches are not batches, so faults would never fire).
fn fanout_graph() -> CsrGraph {
    erdos_renyi_gnm(2_000, 8_000, 7)
}

#[test]
fn pre_cancelled_tokens_stop_every_loop_before_the_first_phase() {
    let graph = deep_graph();
    let weighted = uniform_weights(&graph, 16, 11);
    let token = CancelToken::new();
    token.cancel();
    let interrupted_at_zero = |outcome: RunOutcome| {
        assert_eq!(
            outcome,
            RunOutcome::Interrupted {
                reason: InterruptReason::Cancelled,
                phases_done: 0,
            }
        );
    };
    // Sweep loop (SV), level loop (BFS, unit SSSP), bucket loop (weighted
    // SSSP) and the concurrent peel (k-core) all share the boundary check.
    let config = cancel_config(&token);
    let avoiding = Variant::BranchAvoiding;
    interrupted_at_zero(run_components(&graph, avoiding, &config).1);
    interrupted_at_zero(run_bfs(&graph, 0, BfsStrategy::Plain(avoiding), &config).1);
    interrupted_at_zero(run_sssp_unit(&graph, 0, avoiding, &config).1);
    interrupted_at_zero(run_sssp_weighted(&weighted, 0, 4, avoiding, &config).1);
    interrupted_at_zero(run_kcore(&graph, avoiding, &config).1);
}

#[test]
fn deadline_bounded_runs_stop_promptly_with_the_deadline_reason() {
    let graph = fanout_graph();
    // An already-expired deadline trips the very first boundary check.
    let token = CancelToken::new().with_deadline_in(Duration::ZERO);
    let started = Instant::now();
    let (_, outcome) = run_components(&graph, Variant::BranchAvoiding, &cancel_config(&token));
    assert_eq!(outcome.reason(), Some(InterruptReason::DeadlineExpired));
    // "Promptly" with a wide margin: the run must not finish the whole
    // kernel first (which would report Completed), nor hang.
    assert!(started.elapsed() < Duration::from_secs(5));
    assert!(!token.is_cancelled(), "a deadline is not a cancel flag");
}

#[test]
fn phase_budgets_interrupt_exactly_at_the_budget() {
    let graph = deep_graph();
    let token = CancelToken::new().with_phase_budget(1);
    let (run, outcome) = run_components(&graph, Variant::BranchAvoiding, &cancel_config(&token));
    assert_eq!(
        outcome,
        RunOutcome::Interrupted {
            reason: InterruptReason::PhaseBudgetExhausted,
            phases_done: 1,
        },
        "the deep grid needs more than one sweep, so budget 1 must interrupt"
    );
    // Partial SV labels are monotone upper bounds: hooking only ever
    // lowers a label below the identity initialisation.
    for (v, &label) in run.labels.as_slice().iter().enumerate() {
        assert!(label as usize <= v, "label {label} above identity at {v}");
    }
}

#[test]
fn interrupted_bfs_is_an_exact_level_prefix() {
    let graph = deep_graph();
    let reference = bfs_distances_reference(&graph, 0);
    let token = CancelToken::new().with_phase_budget(2);
    let (run, outcome) = run_bfs(
        &graph,
        0,
        BfsStrategy::Plain(Variant::BranchAvoiding),
        &cancel_config(&token),
    );
    assert!(!outcome.is_completed());
    // Level-synchronous BFS settles whole levels: every distance written
    // before the cut is final, not just a bound.
    let mut discovered = 0usize;
    for (v, &d) in run.result.distances().iter().enumerate() {
        if d != UNREACHED {
            assert_eq!(d, reference[v], "settled distance differs at {v}");
            discovered += 1;
        }
    }
    assert!(discovered >= 1, "the root itself is always settled");
    let full_reach = reference.iter().filter(|&&d| d != UNREACHED).count();
    assert!(
        discovered < full_reach,
        "an interrupted traversal of a deep grid must be a strict prefix"
    );
}

#[test]
fn interrupted_kcore_reports_final_core_numbers_for_the_peeled_prefix() {
    let graph = relabel_random(&fanout_graph(), 3);
    let reference = kcore_peeling(&graph);
    let token = CancelToken::new().with_phase_budget(2);
    let (run, outcome) = run_kcore(&graph, Variant::BranchAvoiding, &cancel_config(&token));
    assert!(!outcome.is_completed());
    for (v, &core) in run.cores.as_slice().iter().enumerate() {
        if core != UNREACHED {
            assert_eq!(core, reference.core(v as u32), "peeled core differs at {v}");
        }
    }
}

#[test]
fn interrupted_bc_is_exact_over_the_completed_source_prefix() {
    let graph = fanout_graph();
    let sources: Vec<u32> = (0..16).collect();
    let token = CancelToken::new().with_phase_budget(3);
    let (run, outcome) = run_betweenness(
        &graph,
        Variant::BranchAvoiding,
        Some(&sources),
        &cancel_config(&token),
    );
    let (scores, done) = (run.scores, run.sources_done);
    assert!(!outcome.is_completed());
    assert!(done < sources.len(), "budget 3 cannot finish 16 sources");
    let expected = betweenness_centrality_sources(&graph, &sources[..done]);
    for (v, (&got, &want)) in scores.iter().zip(&expected).enumerate() {
        let tolerance = 1e-9 * want.abs().max(1.0);
        assert!(
            (got - want).abs() <= tolerance,
            "prefix score differs at {v}: {got} vs {want}"
        );
    }
}

#[test]
fn resumed_sv_converges_bit_identical_to_an_uninterrupted_run() {
    let graph = deep_graph();
    let expected = run_components(
        &graph,
        Variant::BranchAvoiding,
        &RunConfig::new().threads(THREADS),
    )
    .0
    .labels;
    assert_eq!(
        expected.canonical(),
        connected_components_union_find(&graph),
        "reference run disagrees with union-find — broken precondition"
    );
    for budget in [1, 2] {
        let token = CancelToken::new().with_phase_budget(budget);
        let (partial, outcome) =
            run_components(&graph, Variant::BranchAvoiding, &cancel_config(&token));
        assert!(!outcome.is_completed(), "budget {budget} should interrupt");
        let resume_config = RunConfig::new().threads(THREADS);
        let avoiding = run_components_resumed(
            &graph,
            Variant::BranchAvoiding,
            &partial.labels,
            &resume_config,
        )
        .0;
        assert_eq!(avoiding.labels.as_slice(), expected.as_slice());
        // The branch-based hooks converge to the same fixpoint from the
        // same partial labels: resume is variant-agnostic.
        let based = run_components_resumed(
            &graph,
            Variant::BranchBased,
            &partial.labels,
            &resume_config,
        )
        .0;
        assert_eq!(based.labels.as_slice(), expected.as_slice());
    }
}

#[test]
fn wsssp_resumed_converges_bit_identical_to_an_uninterrupted_run() {
    let graph = deep_graph();
    let weighted = uniform_weights(&graph, 16, 11);
    let delta = 4;
    let expected = run_sssp_weighted(
        &weighted,
        0,
        delta,
        Variant::BranchAvoiding,
        &RunConfig::new().threads(THREADS),
    )
    .0
    .result;
    assert_eq!(
        expected.distances(),
        sssp_delta_stepping(&weighted, 0, delta).distances(),
        "reference run disagrees with sequential delta-stepping"
    );
    for budget in [1, 3] {
        let token = CancelToken::new().with_phase_budget(budget);
        let (partial, outcome) = run_sssp_weighted(
            &weighted,
            0,
            delta,
            Variant::BranchAvoiding,
            &cancel_config(&token),
        );
        assert!(!outcome.is_completed(), "budget {budget} should interrupt");
        // Partial distances are monotone upper bounds on the true ones.
        for (v, (&bound, &exact)) in partial
            .result
            .distances()
            .iter()
            .zip(expected.distances())
            .enumerate()
        {
            assert!(bound >= exact, "partial distance below optimum at {v}");
        }
        let resumed = run_sssp_weighted_resumed(
            &weighted,
            0,
            delta,
            Variant::BranchAvoiding,
            partial.result.distances(),
            &RunConfig::new().threads(THREADS),
        )
        .0;
        assert_eq!(resumed.result.distances(), expected.distances());
    }
}

#[cfg(debug_assertions)] // the fault seam compiles out of release builds
mod injected_faults {
    use super::*;
    use branch_avoiding_graphs::parallel::{FaultPlan, PoolError, WorkerPool};

    /// The acceptance bar end-to-end: 100 consecutive kernel runs, each
    /// hitting an injected panic in its first fanned-out batch, and the
    /// pool neither deadlocks nor aborts — every panic propagates to the
    /// submitter, the 101st run completes and its labels are correct.
    #[test]
    fn a_hundred_injected_panics_never_wedge_the_kernel_pool() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let graph = fanout_graph();
        let expected = connected_components_union_find(&graph);
        let pool = WorkerPool::with_faults(4, FaultPlan::new().panic_in_batches(0..100));
        for attempt in 0..100 {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                run_components_on(&graph, Variant::BranchBased, &pool, 1)
            }));
            assert!(outcome.is_err(), "attempt {attempt} should have panicked");
        }
        // Batches 100+ are past the plan: the same pool still converges.
        let labels = run_components_on(&graph, Variant::BranchBased, &pool, 1).labels;
        assert_eq!(labels.canonical(), expected);
        assert_eq!(pool.lost_workers(), 0, "task panics are not worker deaths");
        assert_eq!(pool.shutdown(), Ok(()));
    }

    /// Kill the only parked worker; the pool degrades to inline execution
    /// on the submitting thread and the kernel still computes the right
    /// answer. Shutdown reports the loss instead of panicking.
    #[test]
    fn dead_workers_degrade_kernel_runs_to_sequential_execution() {
        let graph = fanout_graph();
        let expected = connected_components_union_find(&graph);
        let pool = WorkerPool::with_faults(2, FaultPlan::new().kill_worker(0, 1));
        let mut spins = 0;
        while pool.lost_workers() < 1 {
            let labels = run_components_on(&graph, Variant::BranchBased, &pool, 1).labels;
            assert_eq!(labels.canonical(), expected, "degrading run went wrong");
            spins += 1;
            assert!(spins < 10_000, "the worker never picked up a batch");
            std::thread::yield_now();
        }
        assert_eq!(pool.live_workers(), 0);
        let labels = run_components_on(&graph, Variant::BranchBased, &pool, 1).labels;
        assert_eq!(labels.canonical(), expected, "inline fallback went wrong");
        assert_eq!(pool.shutdown(), Err(PoolError { lost_workers: 1 }));
    }
}

/// The `BGA_FAULT` grammar is part of the public robustness surface: the
/// CI smoke step and operators both write these specs by hand, so the
/// parser's acceptance/rejection behaviour is pinned here (without
/// touching the process environment — that would race other tests).
#[test]
fn fault_spec_grammar_accepts_the_documented_forms_only() {
    use branch_avoiding_graphs::parallel::{parse_fault_spec, FaultPlan};
    let plan = parse_fault_spec("phase:3:panic,phase:2:delay-ms:50,io:short-read").unwrap();
    assert_eq!(
        plan,
        FaultPlan::new()
            .panic_in_batch(3)
            .delay_batch(2, 50)
            .io_short_read()
    );
    assert!(parse_fault_spec("").unwrap().is_empty());
    for bad in ["phase:1:explode", "io:long-read", "panic", "phase:x:panic"] {
        assert!(parse_fault_spec(bad).is_err(), "{bad:?} should not parse");
    }
}
