//! Minimal CSV/section printing used by every experiment binary.
//!
//! Each binary prints human-readable section headers (lines starting with
//! `#`) and machine-readable CSV rows, so the output can be both read in a
//! terminal and piped into a plotting script.

/// Prints a section banner (`# ...`).
pub fn print_section(title: &str) {
    println!();
    println!("# {title}");
}

/// Prints a CSV header line.
pub fn print_header(columns: &[&str]) {
    println!("{}", columns.join(","));
}

/// Prints one CSV row; floats are formatted with 6 significant digits.
pub fn print_csv_row(fields: &[CsvField<'_>]) {
    let rendered: Vec<String> = fields.iter().map(|f| f.render()).collect();
    println!("{}", rendered.join(","));
}

/// A single CSV cell.
pub enum CsvField<'a> {
    /// Text cell.
    Str(&'a str),
    /// Integer cell.
    Int(u64),
    /// Floating-point cell (printed with 6 significant digits).
    Float(f64),
}

impl CsvField<'_> {
    fn render(&self) -> String {
        match self {
            CsvField::Str(s) => s.to_string(),
            CsvField::Int(i) => i.to_string(),
            CsvField::Float(f) => format!("{f:.6}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_render_expected_text() {
        assert_eq!(CsvField::Str("abc").render(), "abc");
        assert_eq!(CsvField::Int(42).render(), "42");
        assert_eq!(CsvField::Float(1.5).render(), "1.500000");
    }
}
