//! Direction-optimizing BFS (extension, Beamer et al., cited as \[8\]).
//!
//! Runs top-down while the frontier is small and switches to bottom-up when
//! the frontier grows past a configurable fraction of the vertices, then
//! back to top-down when it shrinks again. Provided as an extension so the
//! benchmark suite can compare the branch behaviour of the paper's classic
//! top-down kernels against the algorithmic state of the art it cites.

use super::frontier::{BfsResult, Bitmap};
use super::INFINITY;
use bga_graph::{CsrGraph, VertexId};

/// Switching thresholds for the direction-optimizing traversal (the α/β
/// heuristic of Beamer et al., expressed as frontier fractions).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DirectionConfig {
    /// Switch to bottom-up when `frontier size / |V|` exceeds this value.
    pub to_bottom_up: f64,
    /// Switch back to top-down when the fraction falls below this value.
    pub to_top_down: f64,
}

impl Default for DirectionConfig {
    fn default() -> Self {
        DirectionConfig {
            to_bottom_up: 0.05,
            to_top_down: 0.01,
        }
    }
}

impl DirectionConfig {
    /// Thresholds that never trigger the bottom-up switch: a pure
    /// top-down traversal (the frontier fraction can never exceed 1).
    pub fn always_top_down() -> Self {
        DirectionConfig {
            to_bottom_up: 2.0,
            to_top_down: 0.0,
        }
    }

    /// Thresholds that switch to bottom-up on the first level and never
    /// switch back.
    pub fn always_bottom_up() -> Self {
        DirectionConfig {
            to_bottom_up: 0.0,
            to_top_down: -1.0,
        }
    }
}

/// Runs direction-optimizing BFS from `root`.
pub fn bfs_direction_optimizing(
    graph: &CsrGraph,
    root: VertexId,
    config: DirectionConfig,
) -> BfsResult {
    let n = graph.num_vertices();
    let mut distances = vec![INFINITY; n];
    if (root as usize) >= n {
        return BfsResult::new(distances, Vec::new());
    }
    distances[root as usize] = 0;
    let mut order = vec![root];
    let mut frontier: Vec<VertexId> = vec![root];
    let mut level = 0u32;
    let mut bottom_up = false;
    // One bitmap allocation reused (cleared) across bottom-up levels, as
    // in the parallel kernel.
    let mut in_frontier = Bitmap::new(n);

    while !frontier.is_empty() {
        let frontier_fraction = frontier.len() as f64 / n.max(1) as f64;
        if !bottom_up && frontier_fraction > config.to_bottom_up {
            bottom_up = true;
        } else if bottom_up && frontier_fraction < config.to_top_down {
            bottom_up = false;
        }

        let mut next: Vec<VertexId> = Vec::new();
        if bottom_up {
            // Frontier membership as a bitmap: the per-edge test becomes
            // one load + mask instead of chasing the distances array, and
            // it is the same representation the parallel bottom-up step
            // scans concurrently.
            in_frontier.clear();
            for &v in &frontier {
                in_frontier.set(v as usize);
            }
            for v in 0..n as u32 {
                if distances[v as usize] != INFINITY {
                    continue;
                }
                for &u in graph.neighbors(v) {
                    if in_frontier.get(u as usize) {
                        distances[v as usize] = level + 1;
                        next.push(v);
                        break;
                    }
                }
            }
        } else {
            for &v in &frontier {
                for &w in graph.neighbors(v) {
                    if distances[w as usize] == INFINITY {
                        distances[w as usize] = level + 1;
                        next.push(w);
                    }
                }
            }
        }
        order.extend_from_slice(&next);
        frontier = next;
        level += 1;
    }
    BfsResult::new(distances, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bga_graph::generators::{barabasi_albert, grid_2d, path_graph, MeshStencil};
    use bga_graph::properties::bfs_distances_reference;

    #[test]
    fn matches_reference_with_default_config() {
        for g in [
            path_graph(40),
            grid_2d(9, 9, MeshStencil::Moore),
            barabasi_albert(500, 3, 3),
        ] {
            assert_eq!(
                bfs_direction_optimizing(&g, 0, DirectionConfig::default()).distances(),
                &bfs_distances_reference(&g, 0)[..]
            );
        }
    }

    #[test]
    fn pure_top_down_and_pure_bottom_up_configs_agree() {
        let g = barabasi_albert(300, 2, 5);
        let a = bfs_direction_optimizing(&g, 0, DirectionConfig::always_top_down());
        let b = bfs_direction_optimizing(&g, 0, DirectionConfig::always_bottom_up());
        assert_eq!(a.distances(), b.distances());
    }

    #[test]
    fn power_law_graph_triggers_the_bottom_up_switch() {
        // With the default thresholds a BA graph's explosive second level
        // exceeds 5% of vertices, so the run exercises both directions; the
        // result must still be a valid BFS.
        let g = barabasi_albert(1000, 4, 11);
        let r = bfs_direction_optimizing(&g, 0, DirectionConfig::default());
        assert!(super::super::frontier::check_bfs_invariants(&g, 0, &r).is_ok());
    }
}
