//! Predictor playground: drive every branch-predictor model with the branch
//! stream of a real kernel and with synthetic patterns, and compare their
//! misprediction counts against the paper's 2-bit analytical model.
//!
//! Run with: `cargo run --release --example predictor_playground`

use branch_avoiding_graphs::branchsim::loop_model::simulate_simple_loop;
use branch_avoiding_graphs::branchsim::markov::steady_state_miss_rate;
use branch_avoiding_graphs::branchsim::predictor::all_predictors;
use branch_avoiding_graphs::branchsim::{BranchSite, BranchTrace, TwoBitState};
use branch_avoiding_graphs::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const LOOP: BranchSite = BranchSite::new(0, "playground.loop");
const DATA: BranchSite = BranchSite::new(1, "playground.data");

fn main() {
    // --- Synthetic traces --------------------------------------------------
    println!("=== synthetic branch patterns (100k branches each) ===");
    let patterns: Vec<(&str, BranchTrace)> = vec![
        ("monotone loop (trip count 100)", loop_trace(100, 1_000)),
        ("short loop (trip count 2)", loop_trace(2, 33_000)),
        ("random 50% taken", bernoulli_trace(0.5, 100_000)),
        ("random 10% taken", bernoulli_trace(0.1, 100_000)),
        ("alternating T/N", alternating_trace(100_000)),
    ];
    for (name, trace) in &patterns {
        println!("\npattern: {name} ({} branches)", trace.len());
        let mut predictors = all_predictors();
        for (model, misses) in trace.replay_all(&mut predictors) {
            println!(
                "  {:<18} {:>8} misses ({:.2}%)",
                model,
                misses,
                100.0 * misses as f64 / trace.len() as f64
            );
        }
    }

    // --- Analytical models --------------------------------------------------
    println!("\n=== paper Section 3 analytical checks ===");
    for n in [0u64, 1, 2, 3, 10, 1000] {
        let worst = simulate_simple_loop(TwoBitState::StronglyNotTaken, n).mispredictions;
        let best = simulate_simple_loop(TwoBitState::StronglyTaken, n).mispredictions;
        println!(
            "simple loop, n = {n:>4}: between {best} and {worst} mispredictions (Lemmas 2/4/5/6)"
        );
    }
    for p in [0.1, 0.3, 0.5, 0.9] {
        println!(
            "i.i.d. branch taken with p = {p}: steady-state 2-bit miss rate = {:.3}",
            steady_state_miss_rate(p)
        );
    }

    // --- A real kernel's data-dependent branch ------------------------------
    println!("\n=== the SV 'if' branch on a real graph ===");
    let graph = generators::barabasi_albert(5_000, 3, 11);
    let based = sv_branch_based_instrumented(&graph);
    for step in based.counters.steps.iter() {
        println!(
            "sweep {:>2}: {:>8} branches, {:>7} mispredictions ({:.2}%)",
            step.step + 1,
            step.counters.branches,
            step.counters.branch_mispredictions,
            100.0 * step.counters.misprediction_rate()
        );
    }
}

fn loop_trace(trip_count: usize, repetitions: usize) -> BranchTrace {
    let mut trace = BranchTrace::new();
    for _ in 0..repetitions {
        for _ in 0..trip_count {
            trace.record(LOOP, true);
        }
        trace.record(LOOP, false);
    }
    trace
}

fn bernoulli_trace(p: f64, events: usize) -> BranchTrace {
    let mut rng = StdRng::seed_from_u64(4);
    let mut trace = BranchTrace::new();
    for _ in 0..events {
        trace.record(DATA, rng.gen::<f64>() < p);
    }
    trace
}

fn alternating_trace(events: usize) -> BranchTrace {
    let mut trace = BranchTrace::new();
    for i in 0..events {
        trace.record(DATA, i % 2 == 0);
    }
    trace
}
