//! Baseline connected-components implementations used for cross-validation
//! and for the comparison columns of the experiment harnesses.

use super::labels::ComponentLabels;
use bga_graph::properties::{bfs_distances_reference, connected_components_union_find, UNREACHED};
use bga_graph::CsrGraph;

/// Connected components by union-find (delegates to the reference
/// implementation in `bga-graph`); the canonical ground truth for every test
/// in this crate.
pub fn cc_union_find(graph: &CsrGraph) -> ComponentLabels {
    ComponentLabels::new(connected_components_union_find(graph))
}

/// Connected components by repeated BFS: scan for an unlabelled vertex,
/// flood its component, repeat. O(|V| + |E|) total, a useful independent
/// cross-check because it shares no code with either SV variant or
/// union-find.
pub fn cc_bfs(graph: &CsrGraph) -> ComponentLabels {
    let n = graph.num_vertices();
    let mut labels = vec![u32::MAX; n];
    for root in 0..n as u32 {
        if labels[root as usize] != u32::MAX {
            continue;
        }
        let distances = bfs_distances_reference(graph, root);
        for (v, &d) in distances.iter().enumerate() {
            if d != UNREACHED {
                labels[v] = root;
            }
        }
    }
    ComponentLabels::new(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bga_graph::generators::{erdos_renyi_gnp, path_graph};
    use bga_graph::GraphBuilder;

    #[test]
    fn union_find_and_bfs_agree() {
        let graphs = vec![
            GraphBuilder::undirected(0).build(),
            GraphBuilder::undirected(5)
                .add_edges([(0, 1), (3, 4)])
                .build(),
            path_graph(30),
            erdos_renyi_gnp(200, 0.01, 13),
        ];
        for g in &graphs {
            assert!(cc_union_find(g).same_partition(&cc_bfs(g)));
        }
    }

    #[test]
    fn bfs_labels_use_smallest_root() {
        let g = GraphBuilder::undirected(4).add_edges([(2, 3)]).build();
        let labels = cc_bfs(&g);
        assert_eq!(labels.as_slice(), &[0, 1, 2, 2]);
    }
}
