//! Integration tests: the instrumentation substrate reports counts that are
//! consistent with the structure of the graph and with the paper's
//! qualitative claims (branch ratios, store blow-ups, misprediction decay).

use branch_avoiding_graphs::graph::generators::{barabasi_albert, grid_3d, MeshStencil};
use branch_avoiding_graphs::graph::transform::relabel_random;
use branch_avoiding_graphs::graph::CsrGraph;
use branch_avoiding_graphs::kernels::bfs::{
    bfs_branch_avoiding_instrumented, bfs_branch_based_instrumented,
};
use branch_avoiding_graphs::kernels::cc::{
    sv_branch_avoiding_instrumented, sv_branch_based_instrumented,
};

fn mesh() -> CsrGraph {
    relabel_random(&grid_3d(10, 10, 10, MeshStencil::Moore), 17)
}

fn social() -> CsrGraph {
    barabasi_albert(3_000, 3, 5)
}

#[test]
fn sv_branch_counts_match_the_loop_structure_exactly() {
    // Per sweep, the branch-based kernel evaluates:
    //   while: (not counted inside the sweep delta)
    //   outer for: |V| + 1, inner for: |E'| + |V|, if: |E'|
    // and the branch-avoiding kernel everything except the if.
    for g in [mesh(), social()] {
        let e = g.num_edge_slots() as u64;
        let v = g.num_vertices() as u64;
        let based = sv_branch_based_instrumented(&g);
        for step in &based.counters.steps {
            assert_eq!(
                step.counters.branches,
                (v + 1) + (e + v) + e,
                "branch-based sweep"
            );
        }
        let avoiding = sv_branch_avoiding_instrumented(&g);
        for step in &avoiding.counters.steps {
            assert_eq!(
                step.counters.branches,
                (v + 1) + (e + v),
                "branch-avoiding sweep"
            );
        }
    }
}

#[test]
fn sv_load_counts_match_the_algorithm() {
    // Both variants load CCid[v] once per vertex and CCid[u] once per edge
    // slot, every sweep.
    for g in [mesh(), social()] {
        let e = g.num_edge_slots() as u64;
        let v = g.num_vertices() as u64;
        for run in [
            sv_branch_based_instrumented(&g),
            sv_branch_avoiding_instrumented(&g),
        ] {
            for step in &run.counters.steps {
                assert_eq!(step.counters.loads, v + e);
            }
        }
    }
}

#[test]
fn sv_conditional_move_counts_match_edges() {
    let g = mesh();
    let run = sv_branch_avoiding_instrumented(&g);
    for step in &run.counters.steps {
        assert_eq!(step.counters.conditional_moves, g.num_edge_slots() as u64);
    }
    assert_eq!(
        sv_branch_based_instrumented(&g)
            .counters
            .total()
            .conditional_moves,
        0
    );
}

#[test]
fn bfs_store_blowup_tracks_average_degree() {
    // Branch-avoiding BFS stores ~2 per traversed edge; branch-based ~2 per
    // discovered vertex. Their ratio is therefore approximately the average
    // degree of the traversed region — "up to two orders of magnitude" in
    // the paper's denser graphs.
    for g in [mesh(), social()] {
        let based = bfs_branch_based_instrumented(&g, 0);
        let avoiding = bfs_branch_avoiding_instrumented(&g, 0);
        let reached = based.result.reached_count() as f64;
        let edges = based.counters.total_edges_traversed() as f64;
        let expected_ratio = edges / reached;
        let actual_ratio =
            avoiding.counters.total().stores as f64 / based.counters.total().stores.max(1) as f64;
        assert!(
            (actual_ratio / expected_ratio - 1.0).abs() < 0.25,
            "store ratio {actual_ratio:.2} should be near the average degree {expected_ratio:.2}"
        );
    }
}

#[test]
fn sv_early_sweeps_dominate_mispredictions() {
    // Figure 5's shape: the first half of the sweeps accounts for the large
    // majority of the data-dependent mispredictions of the branch-based
    // kernel.
    let g = mesh();
    let based = sv_branch_based_instrumented(&g);
    let avoiding = sv_branch_avoiding_instrumented(&g);
    let extra: Vec<u64> = based
        .counters
        .steps
        .iter()
        .zip(avoiding.counters.steps.iter())
        .map(|(b, a)| {
            b.counters
                .branch_mispredictions
                .saturating_sub(a.counters.branch_mispredictions)
        })
        .collect();
    let half = extra.len() / 2;
    let early: u64 = extra[..half].iter().sum();
    let late: u64 = extra[half..].iter().sum();
    assert!(
        early > 2 * late,
        "data-dependent mispredictions should concentrate early: early={early}, late={late}"
    );
}

#[test]
fn instrumented_counters_are_deterministic() {
    let g = social();
    let a = sv_branch_based_instrumented(&g);
    let b = sv_branch_based_instrumented(&g);
    assert_eq!(a.counters.total(), b.counters.total());
    let x = bfs_branch_avoiding_instrumented(&g, 0);
    let y = bfs_branch_avoiding_instrumented(&g, 0);
    assert_eq!(x.counters.total(), y.counters.total());
}
