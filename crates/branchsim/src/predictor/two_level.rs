//! Two-level adaptive predictor (Yeh & Patt): per-site local history
//! registers index per-site pattern tables of 2-bit counters.

use super::{Outcome, PredictorModel, TwoBitState};
use crate::site::{BranchSite, MAX_BRANCH_SITES};

/// PAp-style two-level adaptive predictor: each branch site keeps an
/// `history_bits`-bit local history and a private pattern table with
/// `2^history_bits` 2-bit counters.
#[derive(Clone, Debug)]
pub struct TwoLevelAdaptivePredictor {
    histories: [u32; MAX_BRANCH_SITES],
    tables: Vec<Vec<TwoBitState>>,
    history_bits: u32,
}

impl TwoLevelAdaptivePredictor {
    /// Creates the predictor with the given local-history length (1..=16 bits).
    pub fn new(history_bits: u32) -> Self {
        assert!(
            history_bits > 0 && history_bits <= 16,
            "history_bits must be 1..=16"
        );
        TwoLevelAdaptivePredictor {
            histories: [0; MAX_BRANCH_SITES],
            tables: vec![vec![TwoBitState::WeaklyNotTaken; 1 << history_bits]; MAX_BRANCH_SITES],
            history_bits,
        }
    }

    #[inline]
    fn site_index(site: BranchSite) -> usize {
        site.id() as usize % MAX_BRANCH_SITES
    }
}

impl PredictorModel for TwoLevelAdaptivePredictor {
    fn predict(&self, site: BranchSite) -> Outcome {
        let s = Self::site_index(site);
        let pattern = self.histories[s] as usize;
        self.tables[s][pattern].prediction()
    }

    fn record(&mut self, site: BranchSite, outcome: Outcome) -> bool {
        let s = Self::site_index(site);
        let pattern = self.histories[s] as usize;
        let state = self.tables[s][pattern];
        let correct = state.prediction() == outcome;
        self.tables[s][pattern] = state.next(outcome);
        let mask = (1u32 << self.history_bits) - 1;
        self.histories[s] = ((self.histories[s] << 1) | outcome.is_taken() as u32) & mask;
        correct
    }

    fn reset(&mut self) {
        self.histories = [0; MAX_BRANCH_SITES];
        for table in &mut self.tables {
            for entry in table.iter_mut() {
                *entry = TwoBitState::WeaklyNotTaken;
            }
        }
    }

    fn name(&self) -> &'static str {
        "two-level"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SITE: BranchSite = BranchSite::new(0, "loop");

    #[test]
    fn learns_short_periodic_loop_exits_perfectly() {
        // A loop with constant trip count 3 produces the repeating pattern
        // T T T N. After warm-up a two-level predictor with >= 4 history bits
        // predicts the exit correctly, which a single 2-bit counter cannot.
        let mut p = TwoLevelAdaptivePredictor::new(6);
        let mut late_misses = 0;
        for rep in 0..200 {
            for _ in 0..3 {
                let c = p.record(SITE, Outcome::Taken);
                if rep > 50 && !c {
                    late_misses += 1;
                }
            }
            let c = p.record(SITE, Outcome::NotTaken);
            if rep > 50 && !c {
                late_misses += 1;
            }
        }
        assert_eq!(late_misses, 0);
    }

    #[test]
    fn reset_restores_everything() {
        let mut p = TwoLevelAdaptivePredictor::new(4);
        for _ in 0..32 {
            p.record(SITE, Outcome::Taken);
        }
        p.reset();
        assert_eq!(p.predict(SITE), Outcome::NotTaken);
        assert_eq!(p.histories[0], 0);
    }

    #[test]
    #[should_panic(expected = "history_bits")]
    fn rejects_oversized_history() {
        TwoLevelAdaptivePredictor::new(17);
    }
}
