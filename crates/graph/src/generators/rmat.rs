//! R-MAT (recursive matrix) generator — the Graph500 style power-law
//! generator commonly used for graph-kernel benchmarking.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Quadrant probabilities for the recursive matrix subdivision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Probability of the upper-left quadrant (both ids keep their high bit clear).
    pub a: f64,
    /// Probability of the upper-right quadrant (target id sets its high bit).
    pub b: f64,
    /// Probability of the lower-left quadrant (source id sets its high bit).
    pub c: f64,
    /// Probability of the lower-right quadrant (both ids set their high bit).
    pub d: f64,
}

impl Default for RmatParams {
    /// Graph500 reference parameters.
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

impl RmatParams {
    /// Validates that the four probabilities are non-negative and sum to 1
    /// (within floating point tolerance).
    pub fn validate(&self) -> Result<(), String> {
        let vals = [self.a, self.b, self.c, self.d];
        if vals.iter().any(|&p| p < 0.0) {
            return Err("R-MAT probabilities must be non-negative".into());
        }
        let sum: f64 = vals.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("R-MAT probabilities must sum to 1, got {sum}"));
        }
        Ok(())
    }
}

/// Generates an undirected R-MAT graph with `2^scale` vertices and
/// approximately `num_edges` distinct edges (self-loops and duplicates are
/// dropped, so the final count can be slightly lower).
pub fn rmat(scale: u32, num_edges: usize, params: RmatParams, seed: u64) -> CsrGraph {
    params.validate().expect("invalid R-MAT parameters");
    assert!(scale < 31, "scale must keep vertex ids within u32 range");
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);

    // Add small per-level noise to the quadrant probabilities, a standard
    // trick that avoids exactly repeated structure between recursion levels.
    for _ in 0..num_edges {
        let (mut u, mut v) = (0usize, 0usize);
        for level in 0..scale {
            let bit = 1usize << (scale - 1 - level);
            let noise = 1.0 + 0.1 * (rng.gen::<f64>() - 0.5);
            let a = params.a * noise;
            let b_ = params.b * noise;
            let c = params.c * noise;
            let d = params.d * noise;
            let total = a + b_ + c + d;
            let r: f64 = rng.gen::<f64>() * total;
            if r < a {
                // upper-left quadrant: neither bit set
            } else if r < a + b_ {
                v |= bit;
            } else if r < a + b_ + c {
                u |= bit;
            } else {
                u |= bit;
                v |= bit;
            }
        }
        b.push_edge(u as VertexId, v as VertexId);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_count_is_power_of_scale() {
        let g = rmat(8, 1000, RmatParams::default(), 1);
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_edges() <= 1000);
        assert!(
            g.num_edges() > 500,
            "too many collisions: {}",
            g.num_edges()
        );
    }

    #[test]
    fn skewed_parameters_produce_skewed_degrees() {
        let g = rmat(10, 8000, RmatParams::default(), 3);
        let uniform = rmat(
            10,
            8000,
            RmatParams {
                a: 0.25,
                b: 0.25,
                c: 0.25,
                d: 0.25,
            },
            3,
        );
        assert!(
            g.max_degree() > uniform.max_degree(),
            "R-MAT skew should create hubs: {} vs {}",
            g.max_degree(),
            uniform.max_degree()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = RmatParams::default();
        assert_eq!(rmat(7, 400, p, 5), rmat(7, 400, p, 5));
        assert_ne!(rmat(7, 400, p, 5), rmat(7, 400, p, 6));
    }

    #[test]
    fn params_validation() {
        assert!(RmatParams::default().validate().is_ok());
        assert!(RmatParams {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: -0.5
        }
        .validate()
        .is_err());
        assert!(RmatParams {
            a: 0.3,
            b: 0.3,
            c: 0.3,
            d: 0.3
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid R-MAT parameters")]
    fn generator_rejects_bad_params() {
        rmat(
            5,
            10,
            RmatParams {
                a: 1.0,
                b: 1.0,
                c: 0.0,
                d: 0.0,
            },
            1,
        );
    }
}
