//! Parallel level-synchronous BFS: top-down, and direction-optimizing.
//!
//! Every level, the current frontier is split into degree-aware,
//! edge-balanced chunks (see [`crate::pool`]) and executed on a persistent
//! [`WorkerPool`] — workers are spawned once per run and woken per level,
//! so a high-diameter graph with thousands of tiny frontiers pays the
//! thread-creation cost once, not once per level. Each worker scans its
//! chunk into a private next-frontier buffer, and the buffers are
//! concatenated in chunk order. The two top-down variants differ only in
//! how an edge claims its endpoint, reproducing the paper's Algorithms 4
//! and 5 in the concurrent setting:
//!
//! * [`par_bfs_branch_based`] — test `distance == INFINITY`, then claim the
//!   vertex with a `compare_exchange`; both the test and the CAS are
//!   data-dependent branches.
//! * [`par_bfs_branch_avoiding`] — a single `fetch_min(next_level)` per
//!   edge; the candidate is written into the worker's buffer
//!   unconditionally and the buffer length advances by the branch-free
//!   `(prev > next_level) as usize`, the same "write past the end" trick
//!   the sequential branch-avoiding kernel uses.
//!
//! [`par_bfs_direction_optimizing`] composes the branch-avoiding top-down
//! step with a *bottom-up* step over a shared [`Bitmap`] frontier (one
//! `fetch_or` word per 64 vertices): when the frontier grows past the
//! [`DirectionConfig`] threshold, every still-unvisited vertex scans its
//! own neighbours for a parent in the frontier bitmap instead of the
//! frontier pushing outwards — the direction-switching regime of Beamer et
//! al. that the paper evaluates branch-avoidance against.
//!
//! Distances only ever step from `INFINITY` to the unique BFS level of a
//! vertex, and within a level every contender writes the same value, so
//! **distances are deterministic and identical to the sequential kernels
//! for every thread count**. The discovery *order* inside a top-down level
//! depends on which worker wins a race and is therefore not stable across
//! runs with more than one thread (it is still a valid BFS order);
//! bottom-up levels discover in ascending vertex order.

use crate::bitmap::{par_fill_bitmap, Bitmap};
use crate::counters::{collect_run, merge_thread_steps, ThreadTally};
use crate::pool::{
    balanced_prefix_ranges, edge_balanced_ranges, effective_chunks_with_grain, Execute, PoolConfig,
    WorkerPool,
};
use bga_graph::{CsrGraph, VertexId};
use bga_kernels::bfs::direction_optimizing::DirectionConfig;
use bga_kernels::bfs::{BfsResult, INFINITY};
use bga_kernels::stats::RunCounters;
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

/// Result of an instrumented parallel BFS run.
#[derive(Clone, Debug)]
pub struct ParBfsRun {
    /// Distances and discovery order (distances match the sequential
    /// kernels; order is one valid BFS order).
    pub result: BfsResult,
    /// Per-level counters merged across worker threads.
    pub counters: RunCounters,
    /// Worker count the run actually used.
    pub threads: usize,
}

impl ParBfsRun {
    /// Number of BFS levels traversed.
    pub fn levels(&self) -> usize {
        self.counters.num_steps()
    }
}

/// Traversal direction one BFS level ran in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// The frontier pushed outwards (paper Algorithms 4/5).
    TopDown,
    /// Unvisited vertices pulled from the frontier bitmap.
    BottomUp,
}

/// Result of a parallel direction-optimizing BFS run.
#[derive(Clone, Debug)]
pub struct ParDirBfsRun {
    /// Distances and discovery order.
    pub result: BfsResult,
    /// Direction of each expansion step (one per level whose frontier was
    /// non-empty, starting with the root's own expansion).
    pub directions: Vec<Direction>,
    /// Worker count the run actually used.
    pub threads: usize,
}

impl ParDirBfsRun {
    /// Number of levels that ran bottom-up.
    pub fn bottom_up_levels(&self) -> usize {
        self.directions
            .iter()
            .filter(|&&d| d == Direction::BottomUp)
            .count()
    }
}

fn infinite_distances(n: usize) -> Vec<AtomicU32> {
    (0..n).map(|_| AtomicU32::new(INFINITY)).collect()
}

fn into_distances(distances: Vec<AtomicU32>) -> Vec<u32> {
    distances.into_iter().map(AtomicU32::into_inner).collect()
}

/// Degree prefix sums of the frontier: `prefix[i]` = edge slots owned by
/// `frontier[..i]`. Input to the edge-balanced chunker.
fn frontier_degree_prefix(graph: &CsrGraph, frontier: &[VertexId]) -> Vec<usize> {
    let mut prefix = Vec::with_capacity(frontier.len() + 1);
    let mut sum = 0usize;
    prefix.push(0);
    for &v in frontier {
        sum += graph.degree(v);
        prefix.push(sum);
    }
    prefix
}

/// One branch-based top-down level: every frontier chunk claims neighbours
/// with a CAS; returns the next frontier in chunk order.
fn level_topdown_based<E: Execute>(
    graph: &CsrGraph,
    exec: &E,
    grain: usize,
    distances: &[AtomicU32],
    frontier: &[VertexId],
    next_level: u32,
) -> Vec<VertexId> {
    let prefix = frontier_degree_prefix(graph, frontier);
    let chunks =
        effective_chunks_with_grain(*prefix.last().unwrap_or(&0), exec.parallelism(), grain);
    let ranges = balanced_prefix_ranges(&prefix, chunks);
    let buffers: Vec<Vec<VertexId>> = exec.run(ranges, |_chunk, range| {
        let mut local = Vec::new();
        for &v in &frontier[range] {
            for &w in graph.neighbors(v) {
                // Data-dependent test, then claim the vertex with a CAS;
                // exactly one contender per vertex succeeds.
                if distances[w as usize].load(Relaxed) == INFINITY
                    && distances[w as usize]
                        .compare_exchange(INFINITY, next_level, Relaxed, Relaxed)
                        .is_ok()
                {
                    local.push(w);
                }
            }
        }
        local
    });
    buffers.concat()
}

/// One branch-avoiding top-down level: one `fetch_min` per edge, buffer
/// length advanced branch-free; returns the next frontier in chunk order.
fn level_topdown_avoiding<E: Execute>(
    graph: &CsrGraph,
    exec: &E,
    grain: usize,
    distances: &[AtomicU32],
    frontier: &[VertexId],
    next_level: u32,
) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let prefix = frontier_degree_prefix(graph, frontier);
    let chunks =
        effective_chunks_with_grain(*prefix.last().unwrap_or(&0), exec.parallelism(), grain);
    let ranges = balanced_prefix_ranges(&prefix, chunks);
    let prefix_ref = &prefix;
    let buffers: Vec<Vec<VertexId>> = exec.run(ranges, |_chunk, range| {
        // One slot per potential discovery plus the overflow slot the
        // unconditional write of a non-discovery lands in. A chunk can
        // discover at most min(chunk edges, |V|) vertices, so cap the
        // zero-initialization at |V| rather than memsetting one word
        // per edge on dense chunks.
        let chunk_edges = prefix_ref[range.end] - prefix_ref[range.start];
        let mut buffer = vec![0 as VertexId; chunk_edges.min(n) + 1];
        let mut len = 0usize;
        for &v in &frontier[range] {
            for &w in graph.neighbors(v) {
                // The priority write: unconditional atomic minimum.
                let prev = distances[w as usize].fetch_min(next_level, Relaxed);
                // Unconditional candidate write; the slot is claimed by
                // the branch-free length increment iff this edge won the
                // discovery (exactly one fetch_min per vertex observes a
                // previous value above the level being written).
                buffer[len] = w;
                len += usize::from(prev > next_level);
            }
        }
        buffer.truncate(len);
        buffer
    });
    buffers.concat()
}

/// One bottom-up level over the frontier bitmap: every still-unvisited
/// vertex in an edge-balanced chunk scans its neighbours for a parent in
/// `in_frontier`. Discoveries are race-free (each vertex belongs to one
/// chunk), so the next frontier comes back in ascending vertex order.
fn level_bottom_up<E: Execute>(
    graph: &CsrGraph,
    exec: &E,
    bu_ranges: &[std::ops::Range<usize>],
    distances: &[AtomicU32],
    in_frontier: &Bitmap,
    next_level: u32,
) -> Vec<VertexId> {
    let buffers: Vec<Vec<VertexId>> = exec.run(bu_ranges.to_vec(), |_chunk, range| {
        let mut local = Vec::new();
        for v in range {
            if distances[v].load(Relaxed) != INFINITY {
                continue;
            }
            for &u in graph.neighbors(v as VertexId) {
                if in_frontier.get(u as usize) {
                    distances[v].store(next_level, Relaxed);
                    local.push(v as VertexId);
                    break;
                }
            }
        }
        local
    });
    buffers.concat()
}

/// Parallel branch-based top-down BFS from `root`. `threads == 0` uses
/// every available core; a root outside the vertex range yields an
/// all-unreached result, as in the sequential kernels.
pub fn par_bfs_branch_based(graph: &CsrGraph, root: VertexId, threads: usize) -> BfsResult {
    let config = PoolConfig::from_env(threads);
    let pool = WorkerPool::with_config(&config);
    par_bfs_branch_based_on(graph, root, &pool, config.grain)
}

/// [`par_bfs_branch_based`] on an explicit executor — the seam the
/// benchmarks use to compare the persistent pool against per-level
/// `thread::scope` spawns.
pub fn par_bfs_branch_based_on<E: Execute>(
    graph: &CsrGraph,
    root: VertexId,
    exec: &E,
    grain: usize,
) -> BfsResult {
    let n = graph.num_vertices();
    let distances = infinite_distances(n);
    if (root as usize) >= n {
        return BfsResult::new(into_distances(distances), Vec::new());
    }
    distances[root as usize].store(0, Relaxed);
    let mut frontier = vec![root];
    let mut order = vec![root];
    let mut next_level = 0u32;

    while !frontier.is_empty() {
        next_level += 1;
        frontier = level_topdown_based(graph, exec, grain, &distances, &frontier, next_level);
        order.extend_from_slice(&frontier);
    }
    BfsResult::new(into_distances(distances), order)
}

/// Parallel branch-avoiding top-down BFS from `root`: one `fetch_min` per
/// edge and branch-free buffer advancement. `threads == 0` uses every
/// available core.
pub fn par_bfs_branch_avoiding(graph: &CsrGraph, root: VertexId, threads: usize) -> BfsResult {
    let config = PoolConfig::from_env(threads);
    let pool = WorkerPool::with_config(&config);
    par_bfs_branch_avoiding_on(graph, root, &pool, config.grain)
}

/// [`par_bfs_branch_avoiding`] on an explicit executor.
pub fn par_bfs_branch_avoiding_on<E: Execute>(
    graph: &CsrGraph,
    root: VertexId,
    exec: &E,
    grain: usize,
) -> BfsResult {
    let n = graph.num_vertices();
    let distances = infinite_distances(n);
    if (root as usize) >= n {
        return BfsResult::new(into_distances(distances), Vec::new());
    }
    distances[root as usize].store(0, Relaxed);
    let mut frontier = vec![root];
    let mut order = vec![root];
    let mut next_level = 0u32;

    while !frontier.is_empty() {
        next_level += 1;
        frontier = level_topdown_avoiding(graph, exec, grain, &distances, &frontier, next_level);
        order.extend_from_slice(&frontier);
    }
    BfsResult::new(into_distances(distances), order)
}

/// Parallel direction-optimizing BFS from `root` with the default
/// [`DirectionConfig`]. `threads == 0` uses every available core.
pub fn par_bfs_direction_optimizing(graph: &CsrGraph, root: VertexId, threads: usize) -> BfsResult {
    par_bfs_direction_optimizing_with_config(graph, root, threads, DirectionConfig::default())
        .result
}

/// Parallel direction-optimizing BFS with explicit switching thresholds;
/// also reports the direction every level ran in.
pub fn par_bfs_direction_optimizing_with_config(
    graph: &CsrGraph,
    root: VertexId,
    threads: usize,
    config: DirectionConfig,
) -> ParDirBfsRun {
    let pool_config = PoolConfig::from_env(threads);
    let pool = WorkerPool::with_config(&pool_config);
    par_bfs_direction_optimizing_on(graph, root, &pool, pool_config.grain, config)
}

/// [`par_bfs_direction_optimizing_with_config`] on an explicit executor.
///
/// The switching heuristic mirrors the sequential kernel exactly: switch
/// to bottom-up when the frontier fraction exceeds
/// [`DirectionConfig::to_bottom_up`], back to top-down when it falls below
/// [`DirectionConfig::to_top_down`]. Frontier sizes are deterministic, so
/// the per-level directions — and therefore the distances — are identical
/// to the sequential direction-optimizing kernel at every thread count.
pub fn par_bfs_direction_optimizing_on<E: Execute>(
    graph: &CsrGraph,
    root: VertexId,
    exec: &E,
    grain: usize,
    config: DirectionConfig,
) -> ParDirBfsRun {
    let n = graph.num_vertices();
    let threads = exec.parallelism();
    let distances = infinite_distances(n);
    if (root as usize) >= n {
        return ParDirBfsRun {
            result: BfsResult::new(into_distances(distances), Vec::new()),
            directions: Vec::new(),
            threads,
        };
    }
    distances[root as usize].store(0, Relaxed);
    let mut frontier = vec![root];
    let mut order = vec![root];
    let mut next_level = 0u32;
    let mut bottom_up = false;
    let mut directions = Vec::new();

    // Bottom-up sweeps scan the whole vertex range, so their edge-balanced
    // chunking is level-independent: compute it once per run.
    let bu_chunks = effective_chunks_with_grain(graph.num_edge_slots(), threads, grain);
    let bu_ranges = edge_balanced_ranges(graph.offsets(), bu_chunks);
    // One bitmap allocation reused (cleared) across bottom-up levels.
    let mut in_frontier = Bitmap::new(n);

    while !frontier.is_empty() {
        let frontier_fraction = frontier.len() as f64 / n.max(1) as f64;
        if !bottom_up && frontier_fraction > config.to_bottom_up {
            bottom_up = true;
        } else if bottom_up && frontier_fraction < config.to_top_down {
            bottom_up = false;
        }
        directions.push(if bottom_up {
            Direction::BottomUp
        } else {
            Direction::TopDown
        });

        next_level += 1;
        frontier = if bottom_up {
            in_frontier.clear();
            let fill_chunks = effective_chunks_with_grain(frontier.len(), threads, grain);
            par_fill_bitmap(exec, &in_frontier, &frontier, fill_chunks);
            level_bottom_up(
                graph,
                exec,
                &bu_ranges,
                &distances,
                &in_frontier,
                next_level,
            )
        } else {
            level_topdown_avoiding(graph, exec, grain, &distances, &frontier, next_level)
        };
        order.extend_from_slice(&frontier);
    }
    ParDirBfsRun {
        result: BfsResult::new(into_distances(distances), order),
        directions,
        threads,
    }
}

/// Instrumented parallel branch-based BFS: per-worker tallies merged into
/// one [`bga_kernels::stats::StepCounters`] per level.
pub fn par_bfs_branch_based_instrumented(
    graph: &CsrGraph,
    root: VertexId,
    threads: usize,
) -> ParBfsRun {
    let config = PoolConfig::from_env(threads);
    let pool = WorkerPool::with_config(&config);
    let threads = pool.threads();
    let grain = config.grain;
    let n = graph.num_vertices();
    let distances = infinite_distances(n);
    if (root as usize) >= n {
        return ParBfsRun {
            result: BfsResult::new(into_distances(distances), Vec::new()),
            counters: RunCounters::default(),
            threads,
        };
    }
    distances[root as usize].store(0, Relaxed);
    let mut frontier = vec![root];
    let mut order = vec![root];
    let mut next_level = 0u32;
    let mut steps = Vec::new();

    while !frontier.is_empty() {
        next_level += 1;
        let level_index = steps.len();
        let prefix = frontier_degree_prefix(graph, &frontier);
        let level_chunks =
            effective_chunks_with_grain(*prefix.last().unwrap_or(&0), threads, grain);
        let ranges = balanced_prefix_ranges(&prefix, level_chunks);
        let distances = &distances;
        let current = &frontier;
        let outcomes: Vec<(Vec<VertexId>, _)> = pool.run(ranges, |_chunk, range| {
            let mut local = Vec::new();
            let mut tally = ThreadTally::default();
            for &v in &current[range] {
                tally.vertices += 1;
                tally.branches += 1; // frontier-loop bound
                for &w in graph.neighbors(v) {
                    tally.edges += 1;
                    tally.loads += 1;
                    tally.branches += 2; // neighbour-loop bound + visited test
                    tally.data_branches += 1;
                    if distances[w as usize].load(Relaxed) == INFINITY {
                        // CAS claim: load + (on success) store + queue push.
                        tally.loads += 1;
                        tally.branches += 1;
                        tally.data_branches += 1;
                        if distances[w as usize]
                            .compare_exchange(INFINITY, next_level, Relaxed, Relaxed)
                            .is_ok()
                        {
                            tally.stores += 2; // distance + queue slot
                            tally.updates += 1;
                            local.push(w);
                        }
                    }
                }
            }
            (local, tally.into_step(level_index))
        });
        frontier = Vec::new();
        let mut level_steps = Vec::new();
        for (buffer, step) in outcomes {
            frontier.extend_from_slice(&buffer);
            level_steps.push(step);
        }
        order.extend_from_slice(&frontier);
        steps.push(merge_thread_steps(level_index, level_steps));
    }
    ParBfsRun {
        result: BfsResult::new(into_distances(distances), order),
        counters: collect_run(steps),
        threads,
    }
}

/// Instrumented parallel branch-avoiding BFS; see
/// [`par_bfs_branch_based_instrumented`] for the accounting scheme.
pub fn par_bfs_branch_avoiding_instrumented(
    graph: &CsrGraph,
    root: VertexId,
    threads: usize,
) -> ParBfsRun {
    let config = PoolConfig::from_env(threads);
    let pool = WorkerPool::with_config(&config);
    let threads = pool.threads();
    let grain = config.grain;
    let n = graph.num_vertices();
    let distances = infinite_distances(n);
    if (root as usize) >= n {
        return ParBfsRun {
            result: BfsResult::new(into_distances(distances), Vec::new()),
            counters: RunCounters::default(),
            threads,
        };
    }
    distances[root as usize].store(0, Relaxed);
    let mut frontier = vec![root];
    let mut order = vec![root];
    let mut next_level = 0u32;
    let mut steps = Vec::new();

    while !frontier.is_empty() {
        next_level += 1;
        let level_index = steps.len();
        let prefix = frontier_degree_prefix(graph, &frontier);
        let level_chunks =
            effective_chunks_with_grain(*prefix.last().unwrap_or(&0), threads, grain);
        let ranges = balanced_prefix_ranges(&prefix, level_chunks);
        let distances = &distances;
        let current = &frontier;
        let prefix_ref = &prefix;
        let outcomes: Vec<(Vec<VertexId>, _)> = pool.run(ranges, |_chunk, range| {
            let chunk_edges = prefix_ref[range.end] - prefix_ref[range.start];
            let mut buffer = vec![0 as VertexId; chunk_edges.min(n) + 1];
            let mut len = 0usize;
            let mut tally = ThreadTally::default();
            for &v in &current[range] {
                tally.vertices += 1;
                tally.branches += 1; // frontier-loop bound
                for &w in graph.neighbors(v) {
                    let prev = distances[w as usize].fetch_min(next_level, Relaxed);
                    buffer[len] = w;
                    len += usize::from(prev > next_level);
                    tally.edges += 1;
                    // fetch_min = load + predicated min + store; the queue
                    // slot write is unconditional; length advance is an add.
                    tally.loads += 1;
                    tally.stores += 2;
                    tally.conditional_moves += 2;
                    tally.branches += 1; // neighbour-loop bound only
                    tally.updates += u64::from(prev > next_level);
                }
            }
            buffer.truncate(len);
            (buffer, tally.into_step(level_index))
        });
        frontier = Vec::new();
        let mut level_steps = Vec::new();
        for (buffer, step) in outcomes {
            frontier.extend_from_slice(&buffer);
            level_steps.push(step);
        }
        order.extend_from_slice(&frontier);
        steps.push(merge_thread_steps(level_index, level_steps));
    }
    ParBfsRun {
        result: BfsResult::new(into_distances(distances), order),
        counters: collect_run(steps),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bga_graph::generators::{
        barabasi_albert, complete_graph, grid_2d, path_graph, star_graph, MeshStencil,
    };
    use bga_graph::properties::bfs_distances_reference;
    use bga_graph::GraphBuilder;
    use bga_kernels::bfs::direction_optimizing::bfs_direction_optimizing;
    use bga_kernels::bfs::frontier::check_bfs_invariants;

    fn shapes() -> Vec<CsrGraph> {
        vec![
            GraphBuilder::undirected(1).build(),
            GraphBuilder::undirected(6)
                .add_edges([(0, 1), (1, 2), (3, 4)])
                .build(),
            path_graph(60),
            star_graph(40),
            complete_graph(12),
            grid_2d(11, 7, MeshStencil::Moore),
            barabasi_albert(500, 3, 13),
            // Above PARALLEL_GRAIN, so per-level chunking fans out for real.
            barabasi_albert(3_000, 4, 13),
        ]
    }

    #[test]
    fn distances_match_reference_for_every_thread_count() {
        for g in &shapes() {
            for root in [0u32, (g.num_vertices() as u32).saturating_sub(1)] {
                let expected = bfs_distances_reference(g, root);
                for threads in [1, 2, 3, 8] {
                    assert_eq!(
                        par_bfs_branch_based(g, root, threads).distances(),
                        &expected[..],
                        "branch-based, {threads} threads, root {root}"
                    );
                    assert_eq!(
                        par_bfs_branch_avoiding(g, root, threads).distances(),
                        &expected[..],
                        "branch-avoiding, {threads} threads, root {root}"
                    );
                    assert_eq!(
                        par_bfs_direction_optimizing(g, root, threads).distances(),
                        &expected[..],
                        "direction-optimizing, {threads} threads, root {root}"
                    );
                }
            }
        }
    }

    #[test]
    fn direction_optimizing_matches_sequential_levels_and_directions() {
        for g in &shapes() {
            let seq = bfs_direction_optimizing(g, 0, DirectionConfig::default());
            for threads in [1, 2, 8] {
                let par = par_bfs_direction_optimizing_with_config(
                    g,
                    0,
                    threads,
                    DirectionConfig::default(),
                );
                assert_eq!(par.result.distances(), seq.distances(), "{threads} threads");
                assert_eq!(par.result.level_count(), seq.level_count());
                // One expansion step per level with a non-empty frontier.
                assert_eq!(par.directions.len(), par.result.level_count());
            }
        }
    }

    #[test]
    fn pinned_direction_configs_are_honoured() {
        let g = barabasi_albert(800, 4, 11);
        let expected = bfs_distances_reference(&g, 0);
        let top =
            par_bfs_direction_optimizing_with_config(&g, 0, 4, DirectionConfig::always_top_down());
        assert_eq!(top.bottom_up_levels(), 0);
        assert_eq!(top.result.distances(), &expected[..]);
        let bottom =
            par_bfs_direction_optimizing_with_config(&g, 0, 4, DirectionConfig::always_bottom_up());
        assert_eq!(bottom.bottom_up_levels(), bottom.directions.len());
        assert!(bottom.bottom_up_levels() > 0);
        assert_eq!(bottom.result.distances(), &expected[..]);
        // The default heuristic actually mixes directions on a power-law
        // graph: its explosive second level crosses the 5% threshold.
        let auto = par_bfs_direction_optimizing_with_config(&g, 0, 4, DirectionConfig::default());
        assert!(auto.bottom_up_levels() > 0);
        assert!(auto.bottom_up_levels() < auto.directions.len());
        assert_eq!(auto.threads, 4);
    }

    #[test]
    fn bottom_up_discovery_order_is_level_monotone_and_duplicate_free() {
        let g = grid_2d(20, 20, MeshStencil::VonNeumann);
        for threads in [1, 2, 8] {
            let run = par_bfs_direction_optimizing_with_config(
                &g,
                0,
                threads,
                DirectionConfig::always_bottom_up(),
            );
            assert!(check_bfs_invariants(&g, 0, &run.result).is_ok());
            let order = run.result.visit_order();
            assert_eq!(order.len(), run.result.reached_count());
            for pair in order.windows(2) {
                assert!(run.result.distance(pair[0]) <= run.result.distance(pair[1]));
            }
            let mut sorted = order.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), order.len());
        }
    }

    #[test]
    fn discovery_order_is_a_valid_bfs_order() {
        let g = grid_2d(9, 9, MeshStencil::VonNeumann);
        for threads in [1, 2, 8] {
            for result in [
                par_bfs_branch_based(&g, 0, threads),
                par_bfs_branch_avoiding(&g, 0, threads),
            ] {
                assert!(check_bfs_invariants(&g, 0, &result).is_ok());
                let order = result.visit_order();
                assert_eq!(order.len(), result.reached_count());
                // Level-monotone visit order, root first.
                assert_eq!(order[0], 0);
                for pair in order.windows(2) {
                    assert!(result.distance(pair[0]) <= result.distance(pair[1]));
                }
                // No duplicates.
                let mut sorted = order.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), order.len());
            }
        }
    }

    #[test]
    fn out_of_range_root_reaches_nothing() {
        let g = path_graph(5);
        for threads in [1, 4] {
            assert_eq!(par_bfs_branch_based(&g, 99, threads).reached_count(), 0);
            assert_eq!(par_bfs_branch_avoiding(&g, 99, threads).reached_count(), 0);
            assert_eq!(
                par_bfs_direction_optimizing(&g, 99, threads).reached_count(),
                0
            );
            assert_eq!(
                par_bfs_branch_based_instrumented(&g, 99, threads).levels(),
                0
            );
        }
    }

    #[test]
    fn pool_and_scoped_executors_agree() {
        use crate::pool::ScopedExecutor;
        let g = barabasi_albert(1_500, 3, 19);
        let expected = bfs_distances_reference(&g, 0);
        let pool = WorkerPool::new(4);
        let scoped = ScopedExecutor::new(4);
        // Grain of 1 forces fan-out on every level, even tiny ones.
        for grain in [1, 64, 4096] {
            assert_eq!(
                par_bfs_branch_avoiding_on(&g, 0, &pool, grain).distances(),
                &expected[..]
            );
            assert_eq!(
                par_bfs_branch_based_on(&g, 0, &scoped, grain).distances(),
                &expected[..]
            );
            assert_eq!(
                par_bfs_direction_optimizing_on(&g, 0, &pool, grain, DirectionConfig::default())
                    .result
                    .distances(),
                &expected[..]
            );
        }
    }

    #[test]
    fn instrumented_levels_cover_the_whole_traversal() {
        let g = barabasi_albert(800, 3, 7);
        for threads in [1, 2, 8] {
            let run = par_bfs_branch_based_instrumented(&g, 0, threads);
            let total_vertices: u64 = run
                .counters
                .steps
                .iter()
                .map(|s| s.vertices_processed)
                .sum();
            assert_eq!(total_vertices as usize, run.result.reached_count());
            let expected_edges: usize = run.result.visit_order().iter().map(|&v| g.degree(v)).sum();
            assert_eq!(
                run.counters.total_edges_traversed() as usize,
                expected_edges
            );
            assert_eq!(run.levels(), run.result.level_count());
        }
    }

    #[test]
    fn branch_contrast_survives_parallelism() {
        let g = grid_2d(45, 45, MeshStencil::Moore);
        let based = par_bfs_branch_based_instrumented(&g, 0, 4);
        let avoiding = par_bfs_branch_avoiding_instrumented(&g, 0, 4);
        assert_eq!(based.result.distances(), avoiding.result.distances());
        let b = based.counters.total();
        let a = avoiding.counters.total();
        // The avoiding kernel trades the per-edge branch for per-edge stores.
        assert!(b.branches > a.branches);
        assert!(a.stores > b.stores);
        assert!(b.branch_mispredictions > 0);
        assert_eq!(a.branch_mispredictions, 0);
    }
}
