//! `bga cc`: run a connected-components variant and print a summary.

use super::graph_input::{footprint_line, load_graph};
use super::CliError;
use bga_graph::AdjacencySource;
use bga_kernels::cc::{
    baseline, sv_branch_avoiding, sv_branch_avoiding_instrumented, sv_branch_based,
    sv_branch_based_instrumented, sv_hybrid, ComponentLabels, HybridConfig,
};
use bga_obs::step_table;
use bga_parallel::{
    par_sv_branch_avoiding, par_sv_branch_avoiding_instrumented, par_sv_branch_avoiding_traced,
    par_sv_branch_avoiding_traced_with_cancel, par_sv_branch_avoiding_with_cancel,
    par_sv_branch_based, par_sv_branch_based_instrumented, par_sv_branch_based_traced,
    par_sv_branch_based_traced_with_cancel, par_sv_branch_based_with_cancel, resolve_threads,
    CancelToken, RunOutcome,
};
use std::time::{Duration, Instant};

/// Runs the `cc` subcommand.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let Some(graph_spec) = args.first() else {
        return Err("cc needs a graph".into());
    };
    let variant = flag_value(args, "--variant").unwrap_or("branch-avoiding");
    let instrumented = args.iter().any(|a| a == "--instrumented");
    let threads = parse_threads(args)?;
    let trace_path = super::trace::parse_trace_path(args)?;
    if trace_path.is_some() && threads.is_none() {
        return Err("--trace requires --threads N (only parallel runs are traced)".into());
    }
    if trace_path.is_some() && instrumented {
        return Err(
            "--trace and --instrumented are exclusive (the trace carries the counters)".into(),
        );
    }
    let token = deadline_token(args, threads, instrumented)?;

    let graph = load_graph(graph_spec)?;
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    if let (Some(path), Some(t)) = (trace_path, threads) {
        let sink = super::trace::open_trace_sink(path)?;
        let (par, outcome) = match (variant, &token) {
            ("branch-based", None) => (par_sv_branch_based_traced(&graph, t, &sink), None),
            ("branch-avoiding", None) => (par_sv_branch_avoiding_traced(&graph, t, &sink), None),
            ("branch-based", Some(tok)) => {
                let (par, outcome) = par_sv_branch_based_traced_with_cancel(&graph, t, &sink, tok);
                (par, Some(outcome))
            }
            ("branch-avoiding", Some(tok)) => {
                let (par, outcome) =
                    par_sv_branch_avoiding_traced_with_cancel(&graph, t, &sink, tok);
                (par, Some(outcome))
            }
            (other, _) => {
                return Err(format!(
                    "--trace supports branch-based and branch-avoiding, not {other:?}"
                )
                .into())
            }
        };
        super::trace::finish_trace_sink(path, sink)?;
        println!("threads: {}", par.threads);
        print_labels_summary(variant, &par.labels);
        println!("iterations: {}", par.counters.num_steps());
        super::check_deadline(&outcome.unwrap_or(RunOutcome::Completed))?;
        return Ok(());
    }

    if let (Some(t), Some(tok)) = (threads, &token) {
        println!("threads: {}", resolve_threads(t));
        let start = Instant::now();
        let (par, outcome) = match variant {
            "branch-based" => par_sv_branch_based_with_cancel(&graph, t, tok),
            "branch-avoiding" => par_sv_branch_avoiding_with_cancel(&graph, t, tok),
            other => {
                return Err(format!(
                    "--timeout-ms supports branch-based and branch-avoiding, not {other:?}"
                )
                .into())
            }
        };
        let elapsed = start.elapsed();
        print_labels_summary(variant, &par.labels);
        println!("wall clock: {:.3} ms", elapsed.as_secs_f64() * 1e3);
        super::check_deadline(&outcome)?;
        return Ok(());
    }

    if instrumented {
        let run = match (variant, threads) {
            ("branch-based", None) => sv_branch_based_instrumented(&graph),
            ("branch-avoiding", None) => sv_branch_avoiding_instrumented(&graph),
            ("branch-based", Some(t)) => {
                let par = par_sv_branch_based_instrumented(&graph, t);
                println!("threads: {}", par.threads);
                bga_kernels::cc::SvRun {
                    labels: par.labels,
                    counters: par.counters,
                }
            }
            ("branch-avoiding", Some(t)) => {
                let par = par_sv_branch_avoiding_instrumented(&graph, t);
                println!("threads: {}", par.threads);
                bga_kernels::cc::SvRun {
                    labels: par.labels,
                    counters: par.counters,
                }
            }
            (other, _) => {
                return Err(format!(
                    "--instrumented supports branch-based and branch-avoiding, not {other:?}"
                )
                .into())
            }
        };
        print_labels_summary(variant, &run.labels);
        println!("iterations: {}", run.iterations());
        println!("{}", footprint_line(&graph.footprint()));
        println!("totals: {}", run.counters.total());
        print!("{}", step_table("iteration", &run.counters.steps).render());
        return Ok(());
    }

    // Report the resolved worker count before the timed region so the
    // stdout write does not bias sequential-vs-parallel wall clocks.
    if let Some(t) = threads {
        println!("threads: {}", resolve_threads(t));
    }
    let start = Instant::now();
    let labels: ComponentLabels = match (variant, threads) {
        ("branch-based", None) => sv_branch_based(&graph),
        ("branch-avoiding", None) => sv_branch_avoiding(&graph),
        ("branch-based", Some(t)) => par_sv_branch_based(&graph, t),
        ("branch-avoiding", Some(t)) => par_sv_branch_avoiding(&graph, t),
        ("hybrid", None) => sv_hybrid(&graph, HybridConfig::default()),
        ("union-find", None) => baseline::cc_union_find(&graph),
        ("bfs", None) => baseline::cc_bfs(&graph),
        (other, None) => return Err(format!("unknown cc variant {other:?}").into()),
        (other, Some(_)) => {
            return Err(format!(
                "--threads supports branch-based and branch-avoiding, not {other:?}"
            )
            .into())
        }
    };
    let elapsed = start.elapsed();
    print_labels_summary(variant, &labels);
    println!("wall clock: {:.3} ms", elapsed.as_secs_f64() * 1e3);
    Ok(())
}

/// Parses `--timeout-ms T`: the wall-clock budget of a deadline-bounded
/// run, `None` when the flag is absent. A bare `--timeout-ms` with no
/// value is an error, not a silently unbounded run.
pub(super) fn parse_timeout(args: &[String]) -> Result<Option<Duration>, String> {
    match flag_value(args, "--timeout-ms") {
        None if args.iter().any(|a| a == "--timeout-ms") => {
            Err("--timeout-ms requires a value in milliseconds".to_string())
        }
        None => Ok(None),
        Some(text) => text
            .parse::<u64>()
            .map(|ms| Some(Duration::from_millis(ms)))
            .map_err(|e| format!("invalid --timeout-ms value {text:?}: {e}")),
    }
}

/// The shared `--timeout-ms` front end of the kernel commands: parses the
/// flag, enforces that a deadline needs a parallel cancellable run (the
/// sequential references and the instrumented paths have no cancellation
/// seam), and arms a [`CancelToken`] whose deadline starts now —
/// deliberately before graph loading, so the budget covers the whole
/// invocation the way a supervisor's timeout would.
pub(super) fn deadline_token(
    args: &[String],
    threads: Option<usize>,
    instrumented: bool,
) -> Result<Option<CancelToken>, String> {
    let Some(timeout) = parse_timeout(args)? else {
        return Ok(None);
    };
    if threads.is_none() {
        return Err(
            "--timeout-ms requires --threads N (only parallel runs are cancellable)".to_string(),
        );
    }
    if instrumented {
        return Err(
            "--timeout-ms and --instrumented are exclusive (the instrumented paths \
             have no cancellation seam)"
                .to_string(),
        );
    }
    Ok(Some(CancelToken::new().with_deadline_in(timeout)))
}

/// Parses `--threads N`: `None` when the flag is absent (sequential
/// kernels), `Some(0)` meaning "all cores", `Some(n)` otherwise. A bare
/// `--threads` with no value is an error, not a silent sequential run.
pub(super) fn parse_threads(args: &[String]) -> Result<Option<usize>, String> {
    match flag_value(args, "--threads") {
        None if args.iter().any(|a| a == "--threads") => {
            Err("--threads requires a value (0 means all cores)".to_string())
        }
        None => Ok(None),
        Some(text) => text
            .parse::<usize>()
            .map(Some)
            .map_err(|e| format!("invalid --threads value {text:?}: {e}")),
    }
}

fn print_labels_summary(variant: &str, labels: &ComponentLabels) {
    println!("variant: {variant}");
    println!("components: {}", labels.component_count());
    println!("largest component: {}", labels.largest_component_size());
}

pub(super) fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let args = strings(&["g", "--variant", "hybrid", "--instrumented"]);
        assert_eq!(flag_value(&args, "--variant"), Some("hybrid"));
        assert_eq!(flag_value(&args, "--root"), None);
    }

    #[test]
    fn runs_on_a_builtin_graph() {
        assert!(run(&strings(&["cond-mat-2005", "--variant", "union-find"])).is_ok());
        assert!(run(&strings(&["cond-mat-2005", "--variant", "nope"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn trace_flag_writes_a_jsonl_document() {
        let dir = std::env::temp_dir().join("bga_cli_cc_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cc.jsonl");
        let path_str = path.to_str().unwrap();
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--trace",
            path_str
        ]))
        .is_ok());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().next().unwrap().contains("bga-trace-v1"));
        // Tracing needs the parallel path, excludes --instrumented, and a
        // bare --trace is an error.
        assert!(run(&strings(&["cond-mat-2005", "--trace", path_str])).is_err());
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--instrumented",
            "--trace",
            path_str
        ]))
        .is_err());
        assert!(run(&strings(&["cond-mat-2005", "--threads", "2", "--trace"])).is_err());
    }

    #[test]
    fn timeout_flag_bounds_the_parallel_run() {
        use super::super::CliError;
        // A generous deadline completes normally.
        assert_eq!(
            run(&strings(&[
                "cond-mat-2005",
                "--threads",
                "2",
                "--timeout-ms",
                "60000"
            ])),
            Ok(())
        );
        // An already-expired deadline stops at the first phase boundary
        // and maps to the dedicated timeout error, not a usage message.
        assert_eq!(
            run(&strings(&[
                "cond-mat-2005",
                "--threads",
                "2",
                "--timeout-ms",
                "0"
            ])),
            Err(CliError::DeadlineExpired)
        );
        // Usage guards: a deadline needs a parallel, uninstrumented run
        // and a parseable value.
        for bad in [
            &["cond-mat-2005", "--timeout-ms", "5"][..],
            &["cond-mat-2005", "--threads", "2", "--timeout-ms"][..],
            &["cond-mat-2005", "--threads", "2", "--timeout-ms", "abc"][..],
            &[
                "cond-mat-2005",
                "--threads",
                "2",
                "--instrumented",
                "--timeout-ms",
                "5",
            ][..],
        ] {
            assert!(
                matches!(run(&strings(bad)), Err(CliError::Message(_))),
                "{bad:?} did not fail as a usage error"
            );
        }
        // A timed-out traced run still writes a complete trace document
        // whose trailer carries the interruption.
        let dir = std::env::temp_dir().join("bga_cli_cc_timeout");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cc.jsonl");
        let path_str = path.to_str().unwrap();
        assert_eq!(
            run(&strings(&[
                "cond-mat-2005",
                "--threads",
                "2",
                "--timeout-ms",
                "0",
                "--trace",
                path_str
            ])),
            Err(CliError::DeadlineExpired)
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"interrupted\""));
    }

    #[test]
    fn threads_flag_selects_the_parallel_kernels() {
        for variant in ["branch-based", "branch-avoiding"] {
            assert!(run(&strings(&[
                "cond-mat-2005",
                "--variant",
                variant,
                "--threads",
                "2"
            ]))
            .is_ok());
            assert!(run(&strings(&[
                "cond-mat-2005",
                "--variant",
                variant,
                "--threads",
                "2",
                "--instrumented"
            ]))
            .is_ok());
        }
        // Sequential-only variants reject --threads, and the value must parse.
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--variant",
            "hybrid",
            "--threads",
            "2"
        ]))
        .is_err());
        assert!(run(&strings(&["cond-mat-2005", "--threads", "two"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--threads"])).is_err());
    }
}
