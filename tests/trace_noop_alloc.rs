//! The no-op sink compiles the tracing seam out: a `BucketLoop::run`
//! (which *is* `run_traced(&NoopSink)`) performs exactly the same heap
//! allocations as an explicit no-op-sink traced run, while a collecting
//! sink allocates strictly more. The check runs alone in this binary so a
//! counting global allocator sees only its own traffic: the engine is
//! driven on a single-thread pool with a grain large enough that every
//! pass executes inline on the calling thread, making the allocation
//! count exact and repeatable.

use branch_avoiding_graphs::parallel::BranchAvoidingRelax;
use branch_avoiding_graphs::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator with a global allocation counter. `dealloc` is not
/// counted — the contract under test is about performing extra work, and
/// frees mirror the allocations anyway.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn noop_sink_adds_no_allocations_to_an_engine_run() {
    let wg = uniform_weights(
        &generators::grid_2d(32, 32, generators::MeshStencil::VonNeumann),
        8,
        7,
    );
    let pool = WorkerPool::new(1);
    // A grain far above the total edge weight keeps every pass inline.
    let bucket_loop = BucketLoop::new(&wg, &pool, 1_000_000_000, 4);
    let mut state = TraversalState::new(wg.num_vertices());

    // Warm up once so lazy one-time initialisation is off the books.
    bucket_loop.run(&state, 0, &BranchAvoidingRelax::<false>);

    let run = |state: &TraversalState| {
        allocations_during(|| {
            bucket_loop.run(state, 0, &BranchAvoidingRelax::<false>);
        })
    };
    state.reset();
    let untraced = run(&state);
    state.reset();
    assert_eq!(run(&state), untraced, "plain runs are not repeatable");

    state.reset();
    let noop_traced = allocations_during(|| {
        bucket_loop.run_traced(&state, 0, &BranchAvoidingRelax::<false>, &NoopSink);
    });
    assert_eq!(
        noop_traced, untraced,
        "a no-op-sink traced run allocated differently from the untraced run"
    );

    // A collecting sink pays for what it records — strictly more
    // allocations than the compiled-out seam.
    let sink = MemorySink::new();
    state.reset();
    let collected = allocations_during(|| {
        bucket_loop.run_traced(&state, 0, &BranchAvoidingRelax::<false>, &sink);
    });
    assert!(!sink.take().is_empty(), "the collecting sink saw no events");
    assert!(
        collected > noop_traced,
        "collecting sink ({collected} allocations) should exceed the no-op sink ({noop_traced})"
    );
}
