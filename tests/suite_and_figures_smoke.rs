//! Integration smoke tests for the experiment layer: the Table-2 suite, the
//! Table-1 machine models and the qualitative figure-level claims the
//! harness binaries print (so `cargo test` alone certifies the headline
//! reproduction results without running the binaries).

use branch_avoiding_graphs::branchsim::all_machine_models;
use branch_avoiding_graphs::graph::suite::{benchmark_suite, suite_table, SuiteScale};
use branch_avoiding_graphs::kernels::bfs::{
    bfs_branch_avoiding_instrumented, bfs_branch_based_instrumented,
};
use branch_avoiding_graphs::kernels::cc::{
    sv_branch_avoiding_instrumented, sv_branch_based_instrumented,
};
use branch_avoiding_graphs::perfmodel::timing::modeled_speedup;

#[test]
fn table1_has_the_papers_seven_systems() {
    let names: Vec<&str> = all_machine_models().iter().map(|m| m.name).collect();
    for expected in [
        "Cortex-A15",
        "Piledriver",
        "Bobcat",
        "Haswell",
        "Ivy Bridge",
        "Silvermont",
        "Bonnell",
    ] {
        assert!(names.contains(&expected), "missing {expected}");
    }
}

#[test]
fn table2_rows_carry_the_papers_sizes() {
    let suite = benchmark_suite(SuiteScale::Small, 42);
    let table = suite_table(&suite);
    let total_paper_edges: usize = table.iter().map(|r| r.paper_edges).sum();
    assert_eq!(
        total_paper_edges,
        38_354_076 + 3_314_611 + 977_676 + 175_691 + 22_785_136
    );
    for row in &table {
        assert!(row.standin_vertices > 0);
        assert!(row.standin_edges > row.standin_vertices / 2);
    }
}

/// The central qualitative result of the paper, checked end-to-end on the
/// small suite: for SV the branch-avoiding variant wins overall on the deep
/// out-of-order models, for BFS it does not win anywhere by a large margin,
/// and both variants always agree on the answers.
#[test]
fn headline_figure_claims_hold_on_the_small_suite() {
    let suite = benchmark_suite(SuiteScale::Small, 42);
    let machines = all_machine_models();
    let haswell = machines.iter().find(|m| m.name == "Haswell").unwrap();
    let bonnell = machines.iter().find(|m| m.name == "Bonnell").unwrap();

    let mut sv_haswell_wins = 0usize;
    for sg in &suite {
        let sv_based = sv_branch_based_instrumented(&sg.graph);
        let sv_avoiding = sv_branch_avoiding_instrumented(&sg.graph);
        assert!(sv_based.labels.same_partition(&sv_avoiding.labels));

        // Figure 4: ~2x branch ratio.
        let branch_ratio = sv_based.counters.total().branches as f64
            / sv_avoiding.counters.total().branches as f64;
        assert!(
            (1.4..=2.1).contains(&branch_ratio),
            "{}: SV branch ratio {branch_ratio:.2}",
            sg.name()
        );

        // Figure 5: strictly fewer mispredictions for branch-avoiding.
        assert!(
            sv_avoiding.counters.total().branch_mispredictions
                < sv_based.counters.total().branch_mispredictions,
            "{}",
            sg.name()
        );

        // Figure 3: the speedup lands in a plausible band and the deep
        // pipeline favours branch-avoiding more than the in-order Atom.
        let s_haswell =
            modeled_speedup(&sv_based.counters, &sv_avoiding.counters, haswell).unwrap();
        let s_bonnell =
            modeled_speedup(&sv_based.counters, &sv_avoiding.counters, bonnell).unwrap();
        assert!(
            (0.6..=1.6).contains(&s_haswell) && (0.6..=1.6).contains(&s_bonnell),
            "{}: speedups {s_haswell:.2} / {s_bonnell:.2} out of range",
            sg.name()
        );
        assert!(
            s_haswell > s_bonnell,
            "{}: misprediction-heavy machines should favour branch-avoiding",
            sg.name()
        );
        if s_haswell > 1.0 {
            sv_haswell_wins += 1;
        }

        // Figures 6-8 for BFS: identical distances, ~2x fewer branches, and
        // a large store blow-up that wipes out the win.
        let bfs_based = bfs_branch_based_instrumented(&sg.graph, 0);
        let bfs_avoiding = bfs_branch_avoiding_instrumented(&sg.graph, 0);
        assert_eq!(
            bfs_based.result.distances(),
            bfs_avoiding.result.distances()
        );
        assert!(
            bfs_avoiding.counters.total().stores > 4 * bfs_based.counters.total().stores,
            "{}: BFS store blow-up missing",
            sg.name()
        );
        let bfs_speedup =
            modeled_speedup(&bfs_based.counters, &bfs_avoiding.counters, haswell).unwrap();
        assert!(
            bfs_speedup < 1.1,
            "{}: branch-avoiding BFS should not be a clear win, got {bfs_speedup:.2}",
            sg.name()
        );
    }

    // On the misprediction-sensitive machine the SV branch-avoiding variant
    // should win on most of the suite (the paper wins 4-5 of 5 there).
    assert!(
        sv_haswell_wins >= 3,
        "branch-avoiding SV should win on most graphs on Haswell, won {sv_haswell_wins}/5"
    );
}
