//! Breadth-first search kernels.
//!
//! The paper's second case study (Section 5): classic top-down BFS in a
//! branch-based form (paper Alg. 4) and a branch-avoiding form (paper
//! Alg. 5), plus the bottom-up and direction-optimizing variants referenced
//! as related work (\[8\] Beamer et al.) as extensions.
//!
//! * [`topdown_branch`] / [`topdown_branchless`] — plain Rust kernels for
//!   wall-clock measurement.
//! * [`instrumented`] — the same two algorithms on
//!   [`bga_branchsim::ExecMachine`], producing exact per-level counter
//!   series (Figures 6-8, 9b, 10b).
//! * [`bottom_up`] / [`direction_optimizing`] — extension kernels showing
//!   how the branch-avoiding idea composes with frontier-direction
//!   optimization.

pub mod bottom_up;
pub mod direction_optimizing;
pub mod frontier;
pub mod instrumented;
pub mod topdown_branch;
pub mod topdown_branchless;

pub use frontier::{bitmap_from_frontier, BfsResult, Bitmap};
pub use instrumented::{bfs_branch_avoiding_instrumented, bfs_branch_based_instrumented, BfsRun};
pub use topdown_branch::bfs_branch_based;
pub use topdown_branchless::bfs_branch_avoiding;

/// Distance value for vertices not reached from the BFS root (matches
/// [`bga_graph::properties::UNREACHED`]).
pub const INFINITY: u32 = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;
    use bga_graph::generators::{barabasi_albert, erdos_renyi_gnp, grid_2d, MeshStencil};
    use bga_graph::properties::bfs_distances_reference;
    use bga_graph::GraphBuilder;

    #[test]
    fn all_variants_agree_with_reference_distances() {
        let graphs = vec![
            GraphBuilder::undirected(1).build(),
            GraphBuilder::undirected(6)
                .add_edges([(0, 1), (1, 2), (3, 4)])
                .build(),
            grid_2d(9, 7, MeshStencil::VonNeumann),
            erdos_renyi_gnp(300, 0.01, 5),
            barabasi_albert(400, 2, 9),
        ];
        for g in &graphs {
            let expected = bfs_distances_reference(g, 0);
            assert_eq!(
                bfs_branch_based(g, 0).distances(),
                &expected[..],
                "branch-based"
            );
            assert_eq!(
                bfs_branch_avoiding(g, 0).distances(),
                &expected[..],
                "branch-avoiding"
            );
            assert_eq!(
                bottom_up::bfs_bottom_up(g, 0).distances(),
                &expected[..],
                "bottom-up"
            );
            assert_eq!(
                direction_optimizing::bfs_direction_optimizing(
                    g,
                    0,
                    direction_optimizing::DirectionConfig::default()
                )
                .distances(),
                &expected[..],
                "direction-optimizing"
            );
            assert_eq!(
                bfs_branch_based_instrumented(g, 0).result.distances(),
                &expected[..],
                "instrumented branch-based"
            );
            assert_eq!(
                bfs_branch_avoiding_instrumented(g, 0).result.distances(),
                &expected[..],
                "instrumented branch-avoiding"
            );
        }
    }
}
