//! Plain whitespace-separated edge-list reader/writer.

use super::IoError;
use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use std::fs;
use std::path::Path;

/// Parses an undirected graph from edge-list text: one `u v` pair per line,
/// blank lines and lines starting with `#` or `%` ignored.
pub fn read_edge_list_str(text: &str) -> Result<CsrGraph, IoError> {
    let mut builder = GraphBuilder::undirected(0);
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let u = parse_vertex(parts.next(), idx + 1, "missing source vertex")?;
        let v = parse_vertex(parts.next(), idx + 1, "missing target vertex")?;
        if parts.next().is_some() {
            // Extra columns (e.g. edge weights) are tolerated and ignored —
            // the paper's algorithms are unweighted.
        }
        builder.push_edge(u, v);
    }
    Ok(builder.build())
}

/// Reads an edge-list file from disk.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<CsrGraph, IoError> {
    let text = fs::read_to_string(path)?;
    read_edge_list_str(&text)
}

/// Serializes the graph as edge-list text (each undirected edge once, with
/// `u <= v`), prefixed by a comment describing the sizes.
pub fn write_edge_list_string(graph: &CsrGraph) -> String {
    let mut out = String::with_capacity(graph.num_edges() * 12 + 64);
    out.push_str(&format!(
        "# vertices {} edges {}\n",
        graph.num_vertices(),
        graph.num_edges()
    ));
    for (u, v) in graph.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

/// Writes the edge-list representation to a file.
pub fn write_edge_list<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<(), IoError> {
    fs::write(path, write_edge_list_string(graph))?;
    Ok(())
}

fn parse_vertex(token: Option<&str>, line: usize, missing: &str) -> Result<VertexId, IoError> {
    let token = token.ok_or_else(|| IoError::Parse {
        line,
        message: missing.to_string(),
    })?;
    token.parse::<VertexId>().map_err(|e| IoError::Parse {
        line,
        message: format!("invalid vertex id {token:?}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_list_with_comments() {
        let g = read_edge_list_str("# comment\n% other comment\n0 1\n1 2\n\n2 0\n").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn ignores_extra_columns() {
        let g = read_edge_list_str("0 1 5.0\n1 2 0.25\n").unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edge_list_str("0 x\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = read_edge_list_str("0 1\n3\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn file_round_trip() {
        let g = read_edge_list_str("0 1\n1 2\n2 3\n3 0\n").unwrap();
        let dir = std::env::temp_dir().join("bga_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.edges");
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_edge_list("/definitely/not/a/real/path.edges").unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
    }
}
