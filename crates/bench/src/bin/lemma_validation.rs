//! Section 3.2 validation: exact FSA simulation of simple and repeated loops
//! against the bounds stated in Lemmas 1-6 and Corollary 1, plus the
//! Markov-chain steady-state miss rate of the 2-bit predictor.

use bga_bench::report::{print_csv_row, print_header, print_section, CsvField};
use bga_branchsim::loop_model::{
    lemma3_upper_bound, loop_misprediction_bounds, simulate_repeated_loop, simulate_simple_loop,
};
use bga_branchsim::markov::{oracle_static_miss_rate, steady_state_miss_rate};
use bga_branchsim::TwoBitState;

fn main() {
    print_section("Lemmas 2/4/5/6: misprediction bounds of a single simple loop with trip count n");
    print_header(&[
        "n",
        "min_misses_over_initial_states",
        "max_misses_over_initial_states",
        "paper_bound_min",
        "paper_bound_max",
    ]);
    for n in 0u64..=12 {
        let (min, max) = loop_misprediction_bounds(n);
        let (paper_min, paper_max) = match n {
            0 => (0, 1),
            1 => (1, 2),
            2 => (1, 3),
            _ => (1, 3),
        };
        print_csv_row(&[
            CsvField::Int(n),
            CsvField::Int(min),
            CsvField::Int(max),
            CsvField::Int(paper_min),
            CsvField::Int(paper_max),
        ]);
    }

    print_section("Lemma 3 / Corollary 1: k repeated executions of an inner loop");
    print_header(&["k", "simulated_misses_worst_start", "upper_bound_k_plus_2"]);
    for k in [2u64, 4, 8, 16, 64, 256, 1024] {
        let trip_counts: Vec<u64> = (0..k).map(|i| 3 + (i % 4)).collect();
        let worst = TwoBitState::ALL
            .iter()
            .map(|&s| simulate_repeated_loop(s, &trip_counts).mispredictions)
            .max()
            .unwrap();
        print_csv_row(&[
            CsvField::Int(k),
            CsvField::Int(worst),
            CsvField::Int(lemma3_upper_bound(k)),
        ]);
    }

    print_section(
        "Lemma 1: final predictor state after a loop with n >= 3 (from the worst-case start)",
    );
    print_header(&["n", "final_state"]);
    for n in [3u64, 5, 17, 1000] {
        let run = simulate_simple_loop(TwoBitState::StronglyNotTaken, n);
        print_csv_row(&[
            CsvField::Int(n),
            CsvField::Str(match run.final_state {
                TwoBitState::StronglyNotTaken => "strongly-not-taken",
                TwoBitState::WeaklyNotTaken => "weakly-not-taken",
                TwoBitState::WeaklyTaken => "weakly-taken",
                TwoBitState::StronglyTaken => "strongly-taken",
            }),
        ]);
    }

    print_section(
        "Markov model: steady-state miss rate of the 2-bit predictor on an i.i.d. branch",
    );
    print_header(&[
        "taken_probability",
        "two_bit_miss_rate",
        "best_static_miss_rate",
    ]);
    for i in 0..=10u32 {
        let p = i as f64 / 10.0;
        print_csv_row(&[
            CsvField::Float(p),
            CsvField::Float(steady_state_miss_rate(p)),
            CsvField::Float(oracle_static_miss_rate(p)),
        ]);
    }
}
