//! Quickstart: build a graph, run both Shiloach-Vishkin variants and both
//! BFS variants, and print the branch/misprediction comparison that is the
//! paper's core message.
//!
//! Run with: `cargo run --release --example quickstart`

use branch_avoiding_graphs::prelude::*;

fn main() {
    // A mid-sized mesh with randomly permuted vertex ids — the structural
    // family of the paper's audikw1/ldoor graphs.
    let mesh = generators::grid_3d(16, 16, 16, generators::MeshStencil::Moore);
    let graph = branch_avoiding_graphs::graph::transform::relabel_random(&mesh, 42);
    println!(
        "graph: {} vertices, {} undirected edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // --- Connected components: branch-based vs branch-avoiding -----------
    let based = sv_branch_based_instrumented(&graph);
    let avoiding = sv_branch_avoiding_instrumented(&graph);
    assert!(based.labels.same_partition(&avoiding.labels));
    println!(
        "\nShiloach-Vishkin connected components ({} sweeps)",
        based.iterations()
    );
    println!("  components found: {}", based.labels.component_count());
    println!("  branch-based    : {}", based.counters.total());
    println!("  branch-avoiding : {}", avoiding.counters.total());

    // Modelled speedup on two very different microarchitectures.
    for machine in all_machine_models() {
        if machine.name == "Haswell" || machine.name == "Bonnell" {
            let speedup =
                modeled_speedup(&based.counters, &avoiding.counters, &machine).unwrap_or(f64::NAN);
            println!(
                "  modelled branch-avoiding speedup on {:<10}: {:.2}x",
                machine.name, speedup
            );
        }
    }

    // --- BFS: branch-avoidance does NOT pay off here ----------------------
    let root = 0;
    let bfs_based = bfs_branch_based_instrumented(&graph, root);
    let bfs_avoiding = bfs_branch_avoiding_instrumented(&graph, root);
    assert_eq!(
        bfs_based.result.distances(),
        bfs_avoiding.result.distances()
    );
    println!(
        "\nTop-down BFS from vertex {root} ({} levels)",
        bfs_based.levels()
    );
    println!("  branch-based    : {}", bfs_based.counters.total());
    println!("  branch-avoiding : {}", bfs_avoiding.counters.total());
    println!(
        "  store blow-up   : {:.1}x more stores in the branch-avoiding variant",
        bfs_avoiding.counters.total().stores as f64
            / bfs_based.counters.total().stores.max(1) as f64
    );
}
