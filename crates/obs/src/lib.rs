//! # bga-obs
//!
//! The observability layer of the branch-avoiding-graphs workspace: a
//! structured tracing seam the parallel engine and worker pool emit into,
//! a dependency-free JSONL codec for the `bga-trace-v1` schema, trace
//! validation, and the shared table renderer the CLI uses for
//! `--instrumented` output and `bga trace report`.
//!
//! The design mirrors the kernels' `TALLY` const generic: the engine loops
//! are generic over [`TraceSink`] and guard every emission with
//! `S::ENABLED`, so a [`NoopSink`] instantiation compiles the whole layer
//! out — traced and untraced runs are bit-identical, and the untraced fast
//! path pays nothing.
//!
//! ```
//! use bga_obs::{MemorySink, TraceEvent, TraceSink};
//!
//! let sink = bga_obs::MemorySink::new();
//! sink.emit(TraceEvent::PoolSummary { batches: 3, parks: 1, wakes: 2 });
//! let line = sink.take()[0].to_json_line();
//! assert_eq!(TraceEvent::parse_line(&line).unwrap(),
//!            TraceEvent::PoolSummary { batches: 3, parks: 1, wakes: 2 });
//! assert!(!bga_obs::NoopSink::ENABLED);
//! let _ = MemorySink::ENABLED;
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod json;
pub mod serve;
pub mod sink;
pub mod table;
pub mod validate;

pub use event::{
    DecisionEvent, PhaseCounters, PhaseEvent, PhaseKind, RunFootprint, TraceEvent, TRACE_SCHEMA,
};
pub use serve::{
    QueryKind, QueryPayload, QueryStatus, ServeRequest, ServeResponse, ServeStats, SERVE_SCHEMA,
};
pub use sink::{JsonlSink, MemorySink, NoopSink, OffsetSink, TraceSink};
pub use table::{phase_table, step_table, Table};
pub use validate::{parse_trace, validate_trace, PoolTotals, TraceReport};
