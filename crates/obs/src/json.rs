//! Dependency-free JSON value, parser and writer.
//!
//! The workspace builds offline, so there is no serde to lean on; this is
//! the same recursive-descent reader idiom `bga bench compare` uses, plus a
//! compact writer so [`crate::event::TraceEvent`] lines round-trip through
//! plain strings. Objects keep insertion order in a flat pair list — trace
//! lines are tiny, so linear key lookup is fine.

use std::fmt;

/// A parsed (or to-be-written) JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. JSON has only doubles; `u64` counters round-trip exactly
    /// up to 2^53, far beyond any tally this repo produces.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object as an insertion-ordered pair list.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing garbage at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Builds a `Json::Object` from key/value pairs (writer-side convenience).
pub fn object(pairs: Vec<(&str, Json)>) -> Json {
    Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Wraps a `u64` counter as a JSON number.
pub fn num(value: u64) -> Json {
    Json::Number(value as f64)
}

impl fmt::Display for Json {
    /// Writes the compact (no-whitespace) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => {
                // Integers print without a trailing ".0" so counter fields
                // look like counts, not measurements.
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::String(s) => write_escaped(f, s),
            Json::Array(items) => {
                write!(f, "[")?;
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Object(pairs) => {
                write!(f, "{{")?;
                for (index, (key, value)) in pairs.iter().enumerate() {
                    if index > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for ch in s.chars() {
        match ch {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\t' => write!(f, "\\t")?,
            '\r' => write!(f, "\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// Recursive-descent JSON reader over raw bytes.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| "non-ASCII \\u escape".to_string())?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u code point".to_string())?,
                            );
                        }
                        other => {
                            return Err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the bytes came from a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?
                        .chars()
                        .next()
                        .unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("invalid number {text:?} at byte {start}: {e}"))
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(format!("expected {literal:?} at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_round_trip() {
        let value = object(vec![
            ("type", Json::String("phase".to_string())),
            ("index", num(3)),
            ("ratio", Json::Number(1.5)),
            ("flag", Json::Bool(true)),
            ("bucket", Json::Null),
            ("claimed", Json::Array(vec![num(7), num(0)])),
        ]);
        let text = value.to_string();
        assert_eq!(Json::parse(&text).unwrap(), value);
        // Integers print as integers, not doubles.
        assert!(text.contains("\"index\":3"), "{text}");
        assert!(text.contains("\"ratio\":1.5"), "{text}");
    }

    #[test]
    fn escapes_round_trip() {
        let value = object(vec![(
            "s",
            Json::String("quote \" backslash \\ newline \n tab \t".to_string()),
        )]);
        assert_eq!(Json::parse(&value.to_string()).unwrap(), value);
    }

    #[test]
    fn accessors_extract_typed_payloads() {
        let value = Json::parse(r#"{"a": 4, "b": "x", "c": [1], "d": false, "e": 1.5}"#).unwrap();
        assert_eq!(value.get("a").and_then(Json::as_u64), Some(4));
        assert_eq!(value.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            value.get("c").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(value.get("d").and_then(Json::as_bool), Some(false));
        // A fractional number is not a u64.
        assert_eq!(value.get("e").and_then(Json::as_u64), None);
        assert_eq!(value.get("e").and_then(Json::as_f64), Some(1.5));
        assert_eq!(value.get("missing"), None);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("").is_err());
    }
}
