//! METIS / DIMACS-10 graph format.
//!
//! Header line: `<num_vertices> <num_edges> [fmt]`. Then one line per vertex
//! listing its neighbours with **1-based** vertex ids. This is the format the
//! 10th DIMACS Implementation Challenge distributes the paper's test graphs
//! in. Only the unweighted variants (`fmt` absent, `0`, or `00`) are
//! supported; weighted graphs are rejected with a parse error because the
//! paper's kernels are unweighted.

use super::IoError;
use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use std::fs;
use std::path::Path;

/// Parses a METIS-format graph from text.
pub fn read_metis_str(text: &str) -> Result<CsrGraph, IoError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim_start().starts_with('%'));

    let (header_line_no, header) = lines.next().ok_or(IoError::Parse {
        line: 1,
        message: "missing METIS header line".to_string(),
    })?;
    let mut parts = header.split_whitespace();
    let n: usize = parse_number(parts.next(), header_line_no, "vertex count")?;
    let m: usize = parse_number(parts.next(), header_line_no, "edge count")?;
    if let Some(fmt) = parts.next() {
        if fmt.chars().any(|c| c != '0') {
            return Err(IoError::Parse {
                line: header_line_no,
                message: format!("weighted METIS format {fmt:?} is not supported"),
            });
        }
    }

    let mut builder = GraphBuilder::undirected(n);
    let mut vertex_lines = 0usize;
    for (line_no, raw) in lines {
        if vertex_lines >= n {
            if raw.trim().is_empty() {
                continue;
            }
            return Err(IoError::Parse {
                line: line_no,
                message: format!("more vertex lines than the declared {n} vertices"),
            });
        }
        let u = vertex_lines as VertexId;
        for token in raw.split_whitespace() {
            let neighbor: usize = token.parse().map_err(|e| IoError::Parse {
                line: line_no,
                message: format!("invalid neighbour id {token:?}: {e}"),
            })?;
            if neighbor == 0 || neighbor > n {
                return Err(IoError::Parse {
                    line: line_no,
                    message: format!("neighbour id {neighbor} outside 1..={n}"),
                });
            }
            builder.push_edge(u, (neighbor - 1) as VertexId);
        }
        vertex_lines += 1;
    }
    if vertex_lines != n {
        return Err(IoError::Parse {
            line: 0,
            message: format!("expected {n} vertex lines, found {vertex_lines}"),
        });
    }
    let graph = builder.build();
    if graph.num_edges() != m {
        // DIMACS files occasionally miscount; warn by error only when wildly
        // off (strict mode would reject legitimate files with self-loops
        // removed). A mismatch above 1% is treated as a corrupt file.
        let declared = m as f64;
        let actual = graph.num_edges() as f64;
        if declared > 0.0 && (actual - declared).abs() / declared > 0.01 {
            return Err(IoError::Parse {
                line: header_line_no,
                message: format!(
                    "header declares {m} edges but adjacency lists contain {}",
                    graph.num_edges()
                ),
            });
        }
    }
    Ok(graph)
}

/// Reads a METIS file from disk.
pub fn read_metis<P: AsRef<Path>>(path: P) -> Result<CsrGraph, IoError> {
    let text = fs::read_to_string(path)?;
    read_metis_str(&text)
}

/// Serializes the graph in METIS format (1-based neighbour lists).
pub fn write_metis_string(graph: &CsrGraph) -> String {
    let mut out = String::with_capacity(graph.num_edge_slots() * 8 + 64);
    out.push_str(&format!("{} {}\n", graph.num_vertices(), graph.num_edges()));
    for v in graph.vertices() {
        let line: Vec<String> = graph
            .neighbors(v)
            .iter()
            .map(|&u| (u + 1).to_string())
            .collect();
        out.push_str(&line.join(" "));
        out.push('\n');
    }
    out
}

/// Writes the METIS representation to a file.
pub fn write_metis<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<(), IoError> {
    fs::write(path, write_metis_string(graph))?;
    Ok(())
}

fn parse_number(token: Option<&str>, line: usize, what: &str) -> Result<usize, IoError> {
    let token = token.ok_or_else(|| IoError::Parse {
        line,
        message: format!("missing {what} in header"),
    })?;
    token.parse::<usize>().map_err(|e| IoError::Parse {
        line,
        message: format!("invalid {what} {token:?}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_small_metis_graph() {
        // Triangle plus a pendant vertex, 1-based ids.
        let text = "4 4\n2 3\n1 3 4\n1 2\n2\n";
        let g = read_metis_str(text).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
    }

    #[test]
    fn skips_comment_lines() {
        let text = "% a comment\n2 1\n2\n1\n";
        let g = read_metis_str(text).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rejects_weighted_format() {
        let err = read_metis_str("2 1 011\n2\n1\n").unwrap_err();
        assert!(err.to_string().contains("not supported"));
    }

    #[test]
    fn rejects_out_of_range_neighbor() {
        let err = read_metis_str("2 1\n3\n1\n").unwrap_err();
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn rejects_wrong_vertex_count() {
        let err = read_metis_str("3 1\n2\n1\n").unwrap_err();
        assert!(err.to_string().contains("expected 3 vertex lines"));
    }

    #[test]
    fn rejects_large_edge_count_mismatch() {
        let err = read_metis_str("3 100\n2\n1\n\n").unwrap_err();
        assert!(err.to_string().contains("header declares"));
    }

    #[test]
    fn empty_neighbour_lines_are_isolated_vertices() {
        let g = read_metis_str("3 1\n2\n1\n\n").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn file_round_trip() {
        let g = read_metis_str("4 4\n2 3\n1 3 4\n1 2\n2\n").unwrap();
        let dir = std::env::temp_dir().join("bga_graph_metis_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.metis");
        write_metis(&g, &path).unwrap();
        let back = read_metis(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(path).ok();
    }
}
