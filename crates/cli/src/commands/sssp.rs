//! `bga sssp`: run single-source shortest paths and print a summary.
//!
//! `--weights` picks the weight regime:
//!
//! * `unit` (default) — every edge weighs 1. Without `--threads` the
//!   sequential delta-stepping reference runs (`--delta D` picks the
//!   bucket width; distances are identical for every width). With
//!   `--threads N` the parallel client runs the engine's level loop — on
//!   unit weights every delta-stepping bucket *is* a BFS level — in the
//!   requested relaxation discipline.
//! * `uniform` — seeded pseudo-random weights in `1..=32` (seed 42,
//!   symmetric per edge) on the loaded graph. Sequential runs the real
//!   weighted delta-stepping reference; `--threads N` runs the parallel
//!   bucket-loop client. `--delta` picks the bucket width in both modes.
//! * `file` — the graph file's own weights (`u v w` edge lists,
//!   edge-weighted METIS). Requires a file path, not a suite name.

use super::common_args::{flag_value, CommonArgs};
use super::graph_input::{footprint_line, load_graph, load_weighted_graph};
use super::CliError;
use bga_graph::properties::largest_component;
use bga_graph::{uniform_weights, AdjacencySource, WeightedAdjacencySource, WeightedCsrGraph};
use bga_kernels::sssp::{sssp_delta_stepping, sssp_unit_delta_stepping_with_delta, SsspResult};
use bga_obs::step_table;
use bga_parallel::request::{run_sssp_unit, run_sssp_weighted};
use bga_parallel::{resolve_threads, Variant};
use std::time::Instant;

/// Largest weight `--weights uniform` assigns (drawn from `1..=32`).
const UNIFORM_MAX_WEIGHT: u32 = 32;

/// Seed of the `--weights uniform` assignment, matching the suite's
/// stand-in seed so runs are reproducible.
const UNIFORM_SEED: u64 = 42;

/// Weight regime of one `bga sssp` invocation.
#[derive(Clone, Copy, PartialEq, Eq)]
enum WeightsMode {
    Unit,
    Uniform,
    File,
}

/// Runs the `sssp` subcommand.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let Some(graph_spec) = args.first() else {
        return Err("sssp needs a graph".into());
    };
    let common = CommonArgs::parse(args)?;
    let weights_mode = match flag_value(args, "--weights") {
        None if args.iter().any(|a| a == "--weights") => {
            return Err("--weights requires a mode (unit, uniform or file)".into())
        }
        None | Some("unit") => WeightsMode::Unit,
        Some("uniform") => WeightsMode::Uniform,
        Some("file") => WeightsMode::File,
        Some(other) => {
            return Err(
                format!("unknown weights mode {other:?} (expected unit, uniform or file)").into(),
            )
        }
    };
    let variant = common.variant_or("branch-avoiding");
    let sssp_variant: Variant = variant.parse().map_err(|_| {
        format!("unknown sssp variant {variant:?} (expected branch-based, branch-avoiding or auto)")
    })?;
    let delta = match flag_value(args, "--delta") {
        None if args.iter().any(|a| a == "--delta") => {
            return Err("--delta requires a bucket width (≥ 1)".into())
        }
        None => 1u32,
        Some(text) => {
            let value = text
                .parse::<u32>()
                .map_err(|e| format!("invalid --delta value {text:?}: {e}"))?;
            if value == 0 {
                return Err("--delta must be ≥ 1 (a bucket has positive width)".into());
            }
            value
        }
    };
    if weights_mode == WeightsMode::Unit && common.threads.is_some() && delta != 1 {
        return Err(
            "--delta applies to the sequential delta-stepping reference; the parallel \
             unit-weight client always runs the Δ = 1 (level-per-bucket) degeneration \
             (use --weights uniform/file for the bucketed parallel client)"
                .into(),
        );
    }
    // The sequential references have a single relaxation discipline;
    // reject an explicit variant request they could not honour.
    if common.threads.is_none() && common.variant.is_some() {
        return Err(
            "the sequential run is the delta-stepping reference; add --threads N \
             to pick a branch-based or branch-avoiding parallel relaxation"
                .into(),
        );
    }
    if common.threads.is_none() && common.instrumented {
        return Err("--instrumented requires --threads N (parallel runs only)".into());
    }

    let weighted: Option<WeightedCsrGraph> = match weights_mode {
        WeightsMode::Unit => None,
        WeightsMode::Uniform => Some(uniform_weights(
            &load_graph(graph_spec)?,
            UNIFORM_MAX_WEIGHT,
            UNIFORM_SEED,
        )),
        WeightsMode::File => Some(load_weighted_graph(graph_spec)?),
    };
    // Borrow the CSR out of the weighted graph rather than cloning it —
    // it is only read for sizes and the default-root pick.
    let loaded;
    let graph = match &weighted {
        Some(wg) => wg.csr(),
        None => {
            loaded = load_graph(graph_spec)?;
            &loaded
        }
    };
    let source = match flag_value(args, "--root") {
        Some(text) => text
            .parse::<u32>()
            .map_err(|e| format!("invalid --root value {text:?}: {e}"))?,
        None => largest_component(graph).first().copied().unwrap_or(0),
    };
    println!(
        "graph: {} vertices, {} edges; source: {source}",
        graph.num_vertices(),
        graph.num_edges()
    );
    match (weights_mode, &weighted) {
        (WeightsMode::Uniform, Some(wg)) => println!(
            "weights: uniform 1..={UNIFORM_MAX_WEIGHT} (seed {UNIFORM_SEED}), max {}",
            wg.max_weight().unwrap_or(1)
        ),
        (WeightsMode::File, Some(wg)) => {
            println!("weights: from file, max {}", wg.max_weight().unwrap_or(1))
        }
        _ => {}
    }

    if let Some(t) = common.threads {
        // Report the resolved worker count before the timed region so the
        // stdout write does not bias sequential-vs-parallel wall clocks.
        println!("threads: {}", resolve_threads(t));
        match &weighted {
            None => {
                let start = Instant::now();
                let (run, outcome) = match common.trace_path {
                    Some(path) => {
                        let sink = super::trace::open_trace_sink(path)?;
                        let run = run_sssp_unit(
                            graph,
                            source,
                            sssp_variant,
                            &common.run_config().traced(&sink),
                        );
                        super::trace::finish_trace_sink(path, sink)?;
                        run
                    }
                    None => run_sssp_unit(graph, source, sssp_variant, &common.run_config()),
                };
                let elapsed = start.elapsed();
                print_result_summary(variant, &run.result);
                if common.trace_path.is_some() || common.instrumented {
                    println!(
                        "directions: {} top-down, {} bottom-up phases",
                        run.directions.len() - run.bottom_up_phases(),
                        run.bottom_up_phases()
                    );
                }
                if common.instrumented {
                    println!("{}", footprint_line(&graph.footprint()));
                    println!("totals: {}", run.counters.total());
                    print!("{}", step_table("phase", &run.counters.steps).render());
                } else if common.trace_path.is_none() {
                    println!("wall clock: {:.3} ms", elapsed.as_secs_f64() * 1e3);
                }
                super::check_deadline(&outcome)?;
            }
            Some(wg) => {
                let start = Instant::now();
                let (run, outcome) = match common.trace_path {
                    Some(path) => {
                        let sink = super::trace::open_trace_sink(path)?;
                        let run = run_sssp_weighted(
                            wg,
                            source,
                            delta,
                            sssp_variant,
                            &common.run_config().traced(&sink),
                        );
                        super::trace::finish_trace_sink(path, sink)?;
                        run
                    }
                    None => {
                        run_sssp_weighted(wg, source, delta, sssp_variant, &common.run_config())
                    }
                };
                let elapsed = start.elapsed();
                print_result_summary(variant, &run.result);
                println!("delta: {delta}");
                if common.trace_path.is_some() || common.instrumented {
                    println!(
                        "buckets settled: {}; heavy phases: {}",
                        run.buckets_settled, run.heavy_phases
                    );
                }
                if common.instrumented {
                    println!("{}", footprint_line(&wg.footprint()));
                    println!("totals: {}", run.counters.total());
                    print!("{}", step_table("pass", &run.counters.steps).render());
                } else if common.trace_path.is_none() {
                    println!("wall clock: {:.3} ms", elapsed.as_secs_f64() * 1e3);
                }
                super::check_deadline(&outcome)?;
            }
        }
        return Ok(());
    }

    let start = Instant::now();
    let result = match &weighted {
        None => sssp_unit_delta_stepping_with_delta(graph, source, delta),
        Some(wg) => sssp_delta_stepping(wg, source, delta),
    };
    let elapsed = start.elapsed();
    print_result_summary("delta-stepping", &result);
    println!("delta: {delta}");
    println!("wall clock: {:.3} ms", elapsed.as_secs_f64() * 1e3);
    Ok(())
}

fn print_result_summary(variant: &str, result: &SsspResult) {
    println!("variant: {variant}");
    println!("settled: {} vertices", result.reached_count());
    match result.max_distance() {
        Some(d) => println!("max distance: {d}"),
        None => println!("max distance: (nothing settled)"),
    }
    println!("relaxation phases: {}", result.phases());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn runs_sequential_and_parallel_on_a_builtin_graph() {
        assert!(run(&strings(&["cond-mat-2005"])).is_ok());
        assert!(run(&strings(&["cond-mat-2005", "--delta", "4"])).is_ok());
        assert!(run(&strings(&["cond-mat-2005", "--root", "7"])).is_ok());
        for variant in ["branch-based", "branch-avoiding", "auto"] {
            assert!(
                run(&strings(&[
                    "cond-mat-2005",
                    "--variant",
                    variant,
                    "--threads",
                    "2"
                ]))
                .is_ok(),
                "{variant} with --threads failed"
            );
        }
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--instrumented"
        ]))
        .is_ok());
    }

    #[test]
    fn runs_weighted_modes() {
        // Sequential weighted reference on seeded uniform weights.
        assert!(run(&strings(&["cond-mat-2005", "--weights", "uniform"])).is_ok());
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--weights",
            "uniform",
            "--delta",
            "4"
        ]))
        .is_ok());
        // Parallel bucket-loop client, both disciplines, --delta allowed.
        for variant in ["branch-based", "branch-avoiding"] {
            assert!(
                run(&strings(&[
                    "cond-mat-2005",
                    "--weights",
                    "uniform",
                    "--variant",
                    variant,
                    "--threads",
                    "2",
                    "--delta",
                    "4"
                ]))
                .is_ok(),
                "weighted {variant} with --threads failed"
            );
        }
        // Instrumented weighted run reports bucket/pass structure.
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--weights",
            "uniform",
            "--threads",
            "2",
            "--instrumented"
        ]))
        .is_ok());
        // File mode round-trips through the weighted readers.
        let dir = std::env::temp_dir().join("bga_cli_sssp_wtest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.edges");
        std::fs::write(&path, "0 1 5\n1 2 3\n2 3 9\n").unwrap();
        assert!(run(&strings(&[
            path.to_str().unwrap(),
            "--weights",
            "file",
            "--root",
            "0"
        ]))
        .is_ok());
        assert!(run(&strings(&[
            path.to_str().unwrap(),
            "--weights",
            "file",
            "--threads",
            "2",
            "--delta",
            "4"
        ]))
        .is_ok());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trace_flag_writes_a_jsonl_document() {
        let dir = std::env::temp_dir().join("bga_cli_sssp_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sssp.jsonl");
        let path_str = path.to_str().unwrap();
        // Unit-weight trace on the level loop.
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--trace",
            path_str
        ]))
        .is_ok());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().next().unwrap().contains("bga-trace-v1"));
        // Weighted trace on the bucket loop carries the delta.
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--weights",
            "uniform",
            "--delta",
            "4",
            "--threads",
            "2",
            "--trace",
            path_str
        ]))
        .is_ok());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().next().unwrap().contains("\"delta\""));
        assert!(run(&strings(&["cond-mat-2005", "--trace", path_str])).is_err());
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--instrumented",
            "--trace",
            path_str
        ]))
        .is_err());
    }

    #[test]
    fn timeout_flag_bounds_both_parallel_clients() {
        use super::super::CliError;
        // Unit-weight level loop and weighted bucket loop both honour a
        // generous deadline and expire an already-passed one promptly.
        for extra in [&[][..], &["--weights", "uniform", "--delta", "4"][..]] {
            let mut ok_args = vec!["cond-mat-2005", "--threads", "2", "--timeout-ms", "60000"];
            ok_args.extend_from_slice(extra);
            assert_eq!(run(&strings(&ok_args)), Ok(()), "{extra:?} failed");
            let mut expired_args = vec!["cond-mat-2005", "--threads", "2", "--timeout-ms", "0"];
            expired_args.extend_from_slice(extra);
            assert_eq!(
                run(&strings(&expired_args)),
                Err(CliError::DeadlineExpired),
                "{extra:?} did not time out"
            );
        }
        // A deadline needs the parallel path and excludes --instrumented.
        assert!(run(&strings(&["cond-mat-2005", "--timeout-ms", "5"])).is_err());
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--threads",
            "2",
            "--instrumented",
            "--timeout-ms",
            "5"
        ]))
        .is_err());
        // A timed-out traced weighted run still writes an interrupted trace.
        let dir = std::env::temp_dir().join("bga_cli_sssp_timeout");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sssp.jsonl");
        assert_eq!(
            run(&strings(&[
                "cond-mat-2005",
                "--weights",
                "uniform",
                "--threads",
                "2",
                "--timeout-ms",
                "0",
                "--trace",
                path.to_str().unwrap()
            ])),
            Err(CliError::DeadlineExpired)
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"interrupted\""));
    }

    #[test]
    fn bad_usage_fails_loudly() {
        assert!(run(&[]).is_err());
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--variant",
            "sideways",
            "--threads",
            "2"
        ]))
        .is_err());
        assert!(run(&strings(&["cond-mat-2005", "--variant", "branch-avoiding"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--instrumented"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--root", "abc"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--delta"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--delta", "nope"])).is_err());
        // An explicit zero is rejected, not silently clamped to 1.
        assert!(run(&strings(&["cond-mat-2005", "--delta", "0"])).is_err());
        // --delta is a sequential-reference knob in unit mode only.
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--delta",
            "2",
            "--threads",
            "2"
        ]))
        .is_err());
        // Weights-flag misuse.
        assert!(run(&strings(&["cond-mat-2005", "--weights"])).is_err());
        assert!(run(&strings(&["cond-mat-2005", "--weights", "sideways"])).is_err());
        // Suite names carry no file weights.
        assert!(run(&strings(&["cond-mat-2005", "--weights", "file"])).is_err());
        // Sequential weighted runs reject an explicit variant too.
        assert!(run(&strings(&[
            "cond-mat-2005",
            "--weights",
            "uniform",
            "--variant",
            "branch-avoiding"
        ]))
        .is_err());
    }
}
