//! Branch-based top-down BFS (paper Algorithm 4).
//!
//! The classic queue-based traversal: for every traversed edge `(v, w)` the
//! kernel tests `if d[w] == INFINITY` and enqueues `w` on the first visit.
//! That `if` is the data-dependent branch whose misprediction behaviour
//! Section 5.1 bounds at up to `2 * |V̂|` misses.

use super::frontier::BfsResult;
use super::INFINITY;
use bga_graph::{CsrGraph, VertexId};

/// Runs branch-based top-down BFS from `root`. A root outside the vertex
/// range yields an all-unreached result.
pub fn bfs_branch_based(graph: &CsrGraph, root: VertexId) -> BfsResult {
    let n = graph.num_vertices();
    let mut distances = vec![INFINITY; n];
    let mut queue: Vec<VertexId> = Vec::with_capacity(n);
    if (root as usize) >= n {
        return BfsResult::new(distances, queue);
    }

    distances[root as usize] = 0;
    queue.push(root);
    let mut head = 0usize;

    while head < queue.len() {
        let v = queue[head];
        head += 1;
        let next = distances[v as usize] + 1;
        for &w in graph.neighbors(v) {
            if distances[w as usize] == INFINITY {
                distances[w as usize] = next;
                queue.push(w);
            }
        }
    }
    BfsResult::new(distances, queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bga_graph::generators::{complete_graph, path_graph, star_graph};
    use bga_graph::properties::bfs_distances_reference;
    use bga_graph::GraphBuilder;

    #[test]
    fn distances_match_reference() {
        for g in [path_graph(20), star_graph(15), complete_graph(10)] {
            for root in [0u32, 3] {
                assert_eq!(
                    bfs_branch_based(&g, root).distances(),
                    &bfs_distances_reference(&g, root)[..]
                );
            }
        }
    }

    #[test]
    fn visit_order_is_level_monotone() {
        let g = star_graph(10);
        let r = bfs_branch_based(&g, 0);
        let order = r.visit_order();
        assert_eq!(order[0], 0);
        for pair in order.windows(2) {
            assert!(r.distance(pair[0]) <= r.distance(pair[1]));
        }
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        let g = GraphBuilder::undirected(5)
            .add_edges([(0, 1), (2, 3)])
            .build();
        let r = bfs_branch_based(&g, 0);
        assert_eq!(r.distance(1), 1);
        assert_eq!(r.distance(2), INFINITY);
        assert_eq!(r.reached_count(), 2);
    }

    #[test]
    fn out_of_range_root() {
        let g = path_graph(3);
        let r = bfs_branch_based(&g, 99);
        assert_eq!(r.reached_count(), 0);
        assert!(r.visit_order().is_empty());
    }
}
