//! Deterministic fault injection for the worker pool, behind a
//! compile-out seam.
//!
//! The robustness suite needs to make workers panic, stall and die at
//! *chosen, reproducible* points; production builds must pay nothing for
//! that capability. The seam follows the kernels' `TALLY` discipline:
//! every injection site is guarded by `if FAULT_INJECTION { ... }`, and
//! [`FAULT_INJECTION`] is a `const` that is `true` only in debug builds —
//! release builds fold the branches away entirely.
//!
//! A [`FaultPlan`] addresses faults by *batch ordinal*: the pool counts
//! fanned-out batches (inline single-chunk dispatches are not batches) and
//! consults the plan per batch. Plans come from the builder API in tests
//! or from the `BGA_FAULT` environment variable, a comma-separated spec:
//!
//! ```text
//! phase:3:panic         panic inside a task of batch 3 (caught by the
//!                       pool, re-thrown to the submitter)
//! phase:2:delay-ms:50   sleep 50 ms inside a task of batch 2
//! io:short-read         truncate graph reader input (handled by
//!                       bga-graph's IO layer, which parses the same spec)
//! ```
//!
//! Worker-death faults ([`FaultPlan::kill_worker`]) are builder-only: they
//! panic a named worker *between* batches — never between a chunk claim
//! and its completion, so the completion barrier cannot wedge — and are
//! how the pool's degradation paths (health probe, sequential fallback,
//! non-panicking shutdown) are exercised.

use std::time::Duration;

/// Whether fault-injection sites are compiled in. `true` in debug builds,
/// `false` (and constant-folded away) in release builds.
pub const FAULT_INJECTION: bool = cfg!(debug_assertions);

/// Environment variable holding a fault spec (see the module docs for the
/// grammar). Read by [`FaultPlan::from_env`] in debug builds only.
pub const FAULT_ENV_VAR: &str = "BGA_FAULT";

/// One injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    /// Panic inside the first task of batch `batch`.
    Panic { batch: usize },
    /// Sleep `millis` inside the first task of batch `batch`.
    Delay { batch: usize, millis: u64 },
    /// Kill (panic) worker `worker` when it picks up batch `batch` or any
    /// later batch, before it claims any chunk.
    KillWorker { batch: usize, worker: usize },
    /// Truncate graph reader input (consumed by `bga-graph`, not the
    /// pool).
    IoShortRead,
}

/// A deterministic schedule of injected faults, consulted by the worker
/// pool per fanned-out batch. An empty plan (the default) injects
/// nothing; in release builds every plan behaves as empty because the
/// check sites compile out.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// The plan from `BGA_FAULT`, empty when the variable is unset or the
    /// build is release. A malformed spec is an error — a fault harness
    /// that silently injects nothing would pass every test vacuously.
    pub fn from_env() -> Result<Self, String> {
        if !FAULT_INJECTION {
            return Ok(FaultPlan::new());
        }
        match std::env::var(FAULT_ENV_VAR) {
            Ok(spec) => parse_fault_spec(&spec),
            Err(_) => Ok(FaultPlan::new()),
        }
    }

    /// Whether the plan holds no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a panic inside a task of batch `batch`.
    pub fn panic_in_batch(mut self, batch: usize) -> Self {
        self.faults.push(Fault::Panic { batch });
        self
    }

    /// Adds a panic inside one task of every batch in `batches`.
    pub fn panic_in_batches(mut self, batches: impl IntoIterator<Item = usize>) -> Self {
        for batch in batches {
            self.faults.push(Fault::Panic { batch });
        }
        self
    }

    /// Adds a delay inside a task of batch `batch`.
    pub fn delay_batch(mut self, batch: usize, millis: u64) -> Self {
        self.faults.push(Fault::Delay { batch, millis });
        self
    }

    /// Kills parked worker `worker` (1-based, as in the pool's participant
    /// numbering — slot 0 is the submitter and cannot be killed) the next
    /// time it picks up a batch with ordinal `batch` or later. The "or
    /// later" matters: a parked worker only ever picks up the *latest*
    /// published batch, so an exact-ordinal match could be skipped by
    /// scheduling noise, while this form is guaranteed to fire on the
    /// worker's next pick-up.
    ///
    /// # Panics
    /// If `worker` is 0.
    pub fn kill_worker(mut self, batch: usize, worker: usize) -> Self {
        assert!(worker > 0, "worker 0 is the submitting thread");
        self.faults.push(Fault::KillWorker { batch, worker });
        self
    }

    /// Adds the graph-IO short-read fault.
    pub fn io_short_read(mut self) -> Self {
        self.faults.push(Fault::IoShortRead);
        self
    }

    /// Whether a task of batch `batch` should panic.
    pub fn panic_at(&self, batch: usize) -> bool {
        self.faults.contains(&Fault::Panic { batch })
    }

    /// The injected delay for batch `batch`, if any.
    pub fn delay_at(&self, batch: usize) -> Option<Duration> {
        self.faults.iter().find_map(|f| match f {
            Fault::Delay { batch: b, millis } if *b == batch => {
                Some(Duration::from_millis(*millis))
            }
            _ => None,
        })
    }

    /// Whether worker `worker` should die when picking up batch `batch`.
    pub fn kill_at(&self, batch: usize, worker: usize) -> bool {
        self.faults.iter().any(|f| match f {
            Fault::KillWorker {
                batch: from,
                worker: w,
            } => *w == worker && batch >= *from,
            _ => false,
        })
    }

    /// Whether the plan carries the graph-IO short-read fault.
    pub fn short_read(&self) -> bool {
        self.faults.contains(&Fault::IoShortRead)
    }
}

/// Parses a comma-separated `BGA_FAULT` spec (see the module docs for the
/// grammar). Split out from the environment read so the policy is
/// unit-testable.
pub fn parse_fault_spec(spec: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let fields: Vec<&str> = part.split(':').collect();
        let fault = match fields.as_slice() {
            ["io", "short-read"] => Fault::IoShortRead,
            ["phase", batch, "panic"] => Fault::Panic {
                batch: parse_index(batch, part)?,
            },
            ["phase", batch, "delay-ms", millis] => Fault::Delay {
                batch: parse_index(batch, part)?,
                millis: millis
                    .parse()
                    .map_err(|_| format!("bad delay in fault spec {part:?}"))?,
            },
            _ => return Err(format!("unknown fault spec {part:?}")),
        };
        plan.faults.push(fault);
    }
    Ok(plan)
}

fn parse_index(text: &str, spec: &str) -> Result<usize, String> {
    text.parse()
        .map_err(|_| format!("bad batch index in fault spec {spec:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plans_inject_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(!plan.panic_at(0));
        assert_eq!(plan.delay_at(0), None);
        assert!(!plan.kill_at(0, 1));
        assert!(!plan.short_read());
    }

    #[test]
    fn builder_faults_are_addressable() {
        let plan = FaultPlan::new()
            .panic_in_batch(3)
            .delay_batch(2, 50)
            .kill_worker(1, 2)
            .io_short_read();
        assert!(!plan.is_empty());
        assert!(plan.panic_at(3) && !plan.panic_at(2));
        assert_eq!(plan.delay_at(2), Some(Duration::from_millis(50)));
        assert_eq!(plan.delay_at(3), None);
        assert!(plan.kill_at(1, 2), "kill fires at its batch");
        assert!(plan.kill_at(5, 2), "kill fires at any later batch");
        assert!(!plan.kill_at(0, 2), "kill does not fire before its batch");
        assert!(!plan.kill_at(1, 1), "kill names one worker");
        assert!(plan.short_read());
    }

    #[test]
    fn batch_ranges_expand() {
        let plan = FaultPlan::new().panic_in_batches(0..100);
        assert!((0..100).all(|b| plan.panic_at(b)));
        assert!(!plan.panic_at(100));
    }

    #[test]
    #[should_panic(expected = "worker 0")]
    fn the_submitter_cannot_be_killed() {
        let _ = FaultPlan::new().kill_worker(0, 0);
    }

    #[test]
    fn spec_grammar_round_trips() {
        let plan = parse_fault_spec("phase:3:panic, phase:2:delay-ms:50,io:short-read").unwrap();
        assert_eq!(
            plan,
            FaultPlan::new()
                .panic_in_batch(3)
                .delay_batch(2, 50)
                .io_short_read()
        );
        assert_eq!(parse_fault_spec("").unwrap(), FaultPlan::new());
        assert_eq!(parse_fault_spec(" , ").unwrap(), FaultPlan::new());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "phase:panic",
            "phase:x:panic",
            "phase:1:delay-ms:soon",
            "phase:1:explode",
            "io:long-read",
            "coffee",
        ] {
            assert!(parse_fault_spec(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
