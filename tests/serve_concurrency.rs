//! End-to-end concurrency tests for the query server: many client
//! threads hammering one immutable snapshot must each get answers
//! bit-identical to direct request-API runs, deadline-bounded queries
//! must degrade to well-formed partials without wedging the shared
//! pool, and malformed lines mid-stream must not take a connection
//! (or the server) down with them.

use branch_avoiding_graphs::graph::generators::{grid_2d, MeshStencil};
use branch_avoiding_graphs::graph::CsrGraph;
use branch_avoiding_graphs::kernels::bfs::INFINITY;
use branch_avoiding_graphs::obs::{
    QueryKind, QueryPayload, QueryStatus, ServeRequest, ServeResponse,
};
use branch_avoiding_graphs::parallel::request::{
    run_betweenness, run_bfs, run_components, run_kcore,
};
use branch_avoiding_graphs::parallel::{BfsStrategy, RunConfig, Variant};
use branch_avoiding_graphs::serve::{ServeOptions, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;

const SIDE: u32 = 12;
const N: u32 = SIDE * SIDE;
const CLIENTS: usize = 8;

fn grid() -> CsrGraph {
    grid_2d(SIDE as usize, SIDE as usize, MeshStencil::VonNeumann)
}

fn start(graph: CsrGraph, options: ServeOptions) -> (SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind(graph, "127.0.0.1:0", options).expect("bind on an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = thread::spawn(move || server.serve().expect("serve until shutdown"));
    (addr, handle)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { writer, reader }
    }

    fn send_raw(&mut self, line: &str) -> ServeResponse {
        self.writer
            .write_all(line.as_bytes())
            .expect("send request");
        self.writer.flush().expect("flush request");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        ServeResponse::parse_line(&response).expect("parse response")
    }

    fn send(&mut self, request: &ServeRequest) -> ServeResponse {
        self.send_raw(&format!("{}\n", request.to_json_line()))
    }

    fn query(&mut self, kind: QueryKind) -> ServeResponse {
        self.send(&ServeRequest::Query {
            kind,
            variant: None,
            timeout_ms: None,
        })
    }

    fn stats(&mut self) -> branch_avoiding_graphs::obs::ServeStats {
        match self.send(&ServeRequest::Stats) {
            ServeResponse::Stats(stats) => stats,
            other => panic!("expected stats, got {other:?}"),
        }
    }

    fn shutdown(&mut self) {
        match self.send(&ServeRequest::Shutdown) {
            ServeResponse::ShuttingDown => {}
            other => panic!("expected shutting_down, got {other:?}"),
        }
    }
}

/// The ground truth a serve answer must match bit for bit: the same
/// kernels run directly through the request API on the same graph.
struct Expected {
    distances: Vec<Vec<u32>>,
    labels: Vec<u32>,
    cores: Vec<u32>,
    scores: Vec<f64>,
}

fn expected(graph: &CsrGraph, roots: &[u32]) -> Expected {
    let config = RunConfig::new();
    let variant = Variant::BranchAvoiding;
    let distances = roots
        .iter()
        .map(|&root| {
            run_bfs(graph, root, BfsStrategy::Plain(variant), &config)
                .0
                .result
                .distances()
                .to_vec()
        })
        .collect();
    let labels = run_components(graph, variant, &config).0.labels;
    let cores = run_kcore(graph, variant, &config).0.cores;
    let scores = run_betweenness(graph, variant, None, &config).0.scores;
    Expected {
        distances,
        labels: labels.as_slice().to_vec(),
        cores: cores.as_slice().to_vec(),
        scores,
    }
}

fn bc_rank(scores: &[f64], vertex: u32) -> u32 {
    let score = scores[vertex as usize];
    scores
        .iter()
        .enumerate()
        .filter(|&(u, &s)| s > score || (s == score && (u as u32) < vertex))
        .count() as u32
}

#[test]
fn concurrent_clients_get_bit_identical_answers() {
    let graph = grid();
    let roots: Vec<u32> = (0..CLIENTS as u32).map(|i| (i * 19) % N).collect();
    let truth = Arc::new(expected(&graph, &roots));
    let (addr, server) = start(graph, ServeOptions::default());

    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let truth = Arc::clone(&truth);
            let root = (i as u32 * 19) % N;
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                for round in 0..2u32 {
                    // Distance and path against this client's own root.
                    let target = (root + 31 * (round + 1)) % N;
                    let want = truth.distances[i][target as usize];
                    match client.query(QueryKind::Distance { root, target }) {
                        ServeResponse::Query {
                            status: QueryStatus::Ok,
                            payload: QueryPayload::Distance(distance),
                            ..
                        } => {
                            let want = (want != INFINITY).then_some(want);
                            assert_eq!(distance, want, "distance {root}->{target}")
                        }
                        other => panic!("bad distance response: {other:?}"),
                    }
                    match client.query(QueryKind::Path { root, target }) {
                        ServeResponse::Query {
                            payload: QueryPayload::Path(Some(path)),
                            ..
                        } => {
                            assert_eq!(path.len() as u32, want + 1, "path {root}->{target}");
                            assert_eq!(path.first(), Some(&root));
                            assert_eq!(path.last(), Some(&target));
                        }
                        other => panic!("bad path response: {other:?}"),
                    }
                    // Shared single-key kernels: every client, every round.
                    let vertex = (root + round) % N;
                    match client.query(QueryKind::Component { vertex }) {
                        ServeResponse::Query {
                            payload: QueryPayload::Component(label),
                            ..
                        } => assert_eq!(label, truth.labels[vertex as usize]),
                        other => panic!("bad component response: {other:?}"),
                    }
                    match client.query(QueryKind::Core { vertex }) {
                        ServeResponse::Query {
                            payload: QueryPayload::Core(core),
                            ..
                        } => assert_eq!(core, truth.cores[vertex as usize]),
                        other => panic!("bad core response: {other:?}"),
                    }
                    match client.query(QueryKind::BcRank { vertex }) {
                        ServeResponse::Query {
                            payload: QueryPayload::BcRank { rank, score },
                            ..
                        } => {
                            assert_eq!(rank, bc_rank(&truth.scores, vertex));
                            assert_eq!(score, truth.scores[vertex as usize]);
                        }
                        other => panic!("bad bc-rank response: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }

    let mut client = Client::connect(addr);
    let stats = client.stats();
    assert_eq!(stats.queries, (CLIENTS * 2 * 5) as u64);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.partials, 0);
    // Each client's second round reuses every key its first round filled
    // (8 roots + components + cores + bc = 11 keys, under the default
    // 16-entry capacity, so nothing is evicted in between).
    assert!(
        stats.cache_hits >= (CLIENTS * 5) as u64,
        "expected at least one full round of hits, got {}",
        stats.cache_hits
    );
    assert_eq!(stats.graph_vertices, N as u64);
    client.shutdown();
    server.join().expect("server thread");
}

#[test]
fn deadline_partials_do_not_wedge_the_pool() {
    let (addr, server) = start(grid(), ServeOptions::default());
    let mut client = Client::connect(addr);

    // A zero-millisecond budget expires at the first phase boundary: the
    // response must be a well-formed partial, never cached.
    let starved = client.send(&ServeRequest::Query {
        kind: QueryKind::Distance {
            root: 0,
            target: N - 1,
        },
        variant: None,
        timeout_ms: Some(0),
    });
    match starved {
        ServeResponse::Query {
            status: QueryStatus::Partial,
            cached,
            ..
        } => assert!(!cached, "partials must not be served from cache"),
        other => panic!("expected a partial, got {other:?}"),
    }

    // The pool survives: the same query without a deadline completes,
    // and it is a cache miss because the partial was never stored.
    match client.query(QueryKind::Distance {
        root: 0,
        target: N - 1,
    }) {
        ServeResponse::Query {
            status: QueryStatus::Ok,
            payload: QueryPayload::Distance(Some(distance)),
            cached: false,
            ..
        } => assert_eq!(distance, 2 * (SIDE - 1)),
        other => panic!("expected a completed distance, got {other:?}"),
    }
    let stats = client.stats();
    assert_eq!(stats.partials, 1);
    client.shutdown();
    server.join().expect("server thread");
}

#[test]
fn malformed_lines_mid_stream_keep_the_connection_alive() {
    let (addr, server) = start(grid(), ServeOptions::default());
    let mut client = Client::connect(addr);

    let before = client.query(QueryKind::Component { vertex: 0 });
    assert!(matches!(
        before,
        ServeResponse::Query {
            status: QueryStatus::Ok,
            ..
        }
    ));
    for garbage in ["this is not json\n", "{\"op\":\"query\"\n", "{}\n"] {
        match client.send_raw(garbage) {
            ServeResponse::Error { .. } => {}
            other => panic!("expected an error for {garbage:?}, got {other:?}"),
        }
    }
    // Same connection, same snapshot, same answer as before the garbage.
    let after = client.query(QueryKind::Component { vertex: 0 });
    match (before, after) {
        (
            ServeResponse::Query {
                payload: QueryPayload::Component(a),
                ..
            },
            ServeResponse::Query {
                status: QueryStatus::Ok,
                payload: QueryPayload::Component(b),
                ..
            },
        ) => assert_eq!(a, b),
        other => panic!("component answers diverged: {other:?}"),
    }
    let stats = client.stats();
    assert_eq!(stats.errors, 3);
    client.shutdown();
    server.join().expect("server thread");
}
