//! # bga-branchsim
//!
//! The instrumentation substrate of the *Branch-Avoiding Graph Algorithms*
//! reproduction: branch-predictor simulators, exact event counters, the
//! instrumented execution machine the kernels run on, the analytical 2-bit
//! predictor models from the paper's Section 3, and cost models for the
//! seven microarchitectures of Table 1.
//!
//! The paper measures its assembly kernels with hardware performance
//! counters; here the same quantities (instructions, branches,
//! mispredictions, loads, stores) are counted exactly in software while a
//! pluggable [`predictor::PredictorModel`] decides which branches would have
//! been mispredicted. See DESIGN.md ("Substitutions") for why this preserves
//! the paper's claims.
//!
//! ```
//! use bga_branchsim::machine::ExecMachine;
//! use bga_branchsim::site::BranchSite;
//!
//! const LOOP: BranchSite = BranchSite::new(0, "example.loop");
//!
//! let mut machine = ExecMachine::new();
//! let data = [5u32, 3, 9];
//! let mut min = u32::MAX;
//! let mut i = 0usize;
//! while machine.branch(LOOP, i < data.len()) {
//!     let x = machine.load(data[i]);
//!     machine.cond_move(x < min, &mut min, x);
//!     machine.alu(1);
//!     i += 1;
//! }
//! assert_eq!(min, 3);
//! let counters = machine.counters();
//! assert_eq!(counters.branches, 4);       // 3 taken + 1 exit
//! assert_eq!(counters.loads, 3);
//! assert_eq!(counters.conditional_moves, 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod counters;
pub mod loop_model;
pub mod machine;
pub mod machine_model;
pub mod markov;
pub mod predictor;
pub mod site;
pub mod trace;

pub use counters::{NormalizedCounters, PerfCounters};
pub use machine::ExecMachine;
pub use machine_model::{all_machine_models, MachineModel};
pub use predictor::{Outcome, PredictorModel, TwoBitPredictor, TwoBitState};
pub use site::BranchSite;
pub use trace::BranchTrace;
