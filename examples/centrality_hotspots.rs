//! Domain scenario: finding structural hotspots in an infrastructure-like
//! network with betweenness centrality (the extension kernel the paper's
//! introduction motivates), comparing the branch-based and branch-avoiding
//! forward phases.
//!
//! Run with: `cargo run --release --example centrality_hotspots`

use branch_avoiding_graphs::graph::transform::relabel_random;
use branch_avoiding_graphs::kernels::bc::{
    betweenness_centrality, betweenness_centrality_branch_avoiding,
};
use branch_avoiding_graphs::prelude::*;
use std::time::Instant;

fn main() {
    // A transport-like network: a 2-D backbone mesh plus a handful of
    // hub-and-spoke attachments (airports on a road grid).
    let mut builder = GraphBuilder::undirected(0);
    let mesh = generators::grid_2d(40, 40, generators::MeshStencil::VonNeumann);
    for (u, v) in mesh.edges() {
        builder.push_edge(u, v);
    }
    let hubs = [0u32, 820, 1599];
    for (i, &hub) in hubs.iter().enumerate() {
        // Each hub connects to a fan of remote vertices.
        for spoke in 0..30u32 {
            builder.push_edge(hub, 1600 + (i as u32) * 30 + spoke);
        }
    }
    let network = relabel_random(&builder.build(), 11);
    println!(
        "network: {} nodes, {} links",
        network.num_vertices(),
        network.num_edges()
    );

    let start = Instant::now();
    let branch_based = betweenness_centrality(&network);
    let t_based = start.elapsed();
    let start = Instant::now();
    let branch_avoiding = betweenness_centrality_branch_avoiding(&network);
    let t_avoiding = start.elapsed();

    // Identical scores, different branch behaviour.
    let max_diff = branch_based
        .iter()
        .zip(branch_avoiding.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max score difference between variants: {max_diff:.2e}");
    println!(
        "wall clock: branch-based {:.1} ms, branch-avoiding {:.1} ms",
        t_based.as_secs_f64() * 1e3,
        t_avoiding.as_secs_f64() * 1e3
    );

    // Report the top hotspots.
    let mut ranked: Vec<(u32, f64)> = branch_based
        .iter()
        .enumerate()
        .map(|(v, &c)| (v as u32, c))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop 10 betweenness hotspots:");
    println!("{:<8} {:>10} {:>14}", "node", "degree", "betweenness");
    for &(v, c) in ranked.iter().take(10) {
        println!("{:<8} {:>10} {:>14.1}", v, network.degree(v), c);
    }
}
