//! Parallel SSSP: weighted delta-stepping on the engine's bucket loop,
//! and the unit-weight degeneration on its level loop.
//!
//! **Weighted** — the real thing. [`crate::request::run_sssp_weighted`]
//! runs
//! [`crate::engine::BucketLoop`]: bucket-indexed frontiers, light-edge
//! phases re-relaxed until the bucket drains, one deferred heavy pass per
//! settled bucket. The per-edge relaxation discipline is the paper's
//! contrast, realised as [`crate::engine::BucketKernel`]s const-generic
//! over `TALLY`:
//!
//! * [`SsspVariant::BranchAvoiding`] ([`BranchAvoidingRelax`]) — one
//!   unconditional `fetch_min` per edge. The edge-class split is a
//!   predicated mask (an edge of the wrong class relaxes with `INFINITY`,
//!   a guaranteed no-op) and the discovery enqueue is the branch-free
//!   "write past the end" advance, so the inner loop has no
//!   data-dependent branch at all.
//! * [`SsspVariant::BranchBased`] ([`BranchBasedRelax`]) — test the
//!   distance, then claim with a `compare_exchange` retry loop; both the
//!   test and the CAS are data-dependent branches.
//!
//! Distances are bit-identical to the sequential
//! [`bga_kernels::sssp::sssp_dijkstra`] and
//! [`bga_kernels::sssp::sssp_delta_stepping`] references for every thread
//! count, executor, grain, `Δ` and discipline; the phase structure is
//! deterministic across thread counts (frontiers are snapshots — see the
//! bucket-loop docs).
//!
//! **Unit-weight** — on unit weights delta-stepping's buckets collapse
//! into BFS levels (see [`bga_kernels::sssp`]): bucket `i` *is* distance
//! level `i` and every bucket settles in one phase.
//! [`crate::request::run_sssp_unit`] therefore rides
//! [`crate::engine::LevelLoop`] — keeping the queue↔bitmap
//! frontier flip and α/β direction switching — and reuses the BFS level
//! kernels verbatim; its reported phase count equals the sequential Δ = 1
//! phase count.

use crate::auto::AutoSwitch;
use crate::bfs::{auto_level, BranchAvoidingLevel, BranchBasedLevel};
use crate::cancel::{CancelToken, RunOutcome};
use crate::counters::ThreadTally;
use crate::engine::{
    BucketCtx, BucketKernel, BucketLoop, Direction, EdgeClass, LevelLoop, TraversalState,
};
use crate::pool::{Execute, PoolConfig, PoolMonitor, WorkerPool};
use crate::request::{RunConfig, Variant};
use crate::trace::{emit_degradation_warning, run_footprint, TraceRun};
use bga_graph::{AdjacencySource, VertexId, WeightedAdjacencySource};
use bga_kernels::bfs::direction_optimizing::DirectionConfig;
use bga_kernels::bfs::INFINITY;
use bga_kernels::sssp::SsspResult;
use bga_kernels::stats::RunCounters;
use bga_obs::{TraceEvent, TraceSink};
use bga_perfmodel::advisor::AdvisorConfig;
use std::ops::Range;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

/// Which per-edge relaxation discipline a parallel SSSP run uses. Both
/// settle identical distances; they differ only in the instruction mix,
/// mirroring the BFS pair. An alias of the unified
/// [`crate::request::Variant`].
pub use crate::request::Variant as SsspVariant;

/// Result of an instrumented parallel unit-weight SSSP run.
#[derive(Clone, Debug)]
pub struct ParSsspRun {
    /// Distances and phase count (identical to the sequential reference).
    pub result: SsspResult,
    /// Direction each settling phase ran in (top-down queue expansion or
    /// bottom-up bitmap pull).
    pub directions: Vec<Direction>,
    /// Per-phase counters merged across worker threads — populated only
    /// on instrumented/observed runs, empty otherwise.
    pub counters: RunCounters,
    /// Worker count the run actually used.
    pub threads: usize,
}

impl ParSsspRun {
    /// Number of settling phases that ran bottom-up over the bitmap.
    pub fn bottom_up_phases(&self) -> usize {
        self.directions
            .iter()
            .filter(|&&d| d == Direction::BottomUp)
            .count()
    }
}

/// The unified unit-weight request driver behind
/// [`crate::request::run_sssp_unit`]: observed runs (trace sink or cancel
/// token) go through the monitored driver, everything else through the
/// unmonitored fast path with the tally compiled in or out by
/// `config.instrumented`.
pub(crate) fn run_unit_request<G: AdjacencySource, S: TraceSink>(
    graph: &G,
    source: VertexId,
    variant: Variant,
    config: &RunConfig<'_, S>,
) -> (ParSsspRun, RunOutcome) {
    let pool_config = config.pool_config();
    if config.observed() {
        return par_sssp_unit_run_impl(
            graph,
            source,
            &pool_config,
            variant,
            config.sink,
            config.cancel,
        );
    }
    let pool = WorkerPool::with_config(&pool_config);
    let state = TraversalState::new(graph.num_vertices());
    let level_loop = LevelLoop::new(graph, &pool, pool_config.grain, DirectionConfig::default());
    let run = match (variant, config.instrumented) {
        (Variant::BranchAvoiding, false) => {
            level_loop.run(&state, source, &BranchAvoidingLevel::<false>)
        }
        (Variant::BranchAvoiding, true) => {
            level_loop.run(&state, source, &BranchAvoidingLevel::<true>)
        }
        (Variant::BranchBased, false) => level_loop.run(&state, source, &BranchBasedLevel::<false>),
        (Variant::BranchBased, true) => level_loop.run(&state, source, &BranchBasedLevel::<true>),
        (Variant::Auto, tally) => level_loop.run(&state, source, &auto_level(tally)),
    };
    (
        ParSsspRun {
            result: SsspResult::new(state.into_distances(), run.directions.len()),
            directions: run.directions,
            counters: run.counters,
            threads: pool.threads(),
        },
        RunOutcome::Completed,
    )
}

/// [`run_unit_request`] on an explicit executor: plain kernels, the bench
/// seam.
pub(crate) fn run_unit_request_on<G: AdjacencySource, E: Execute>(
    graph: &G,
    source: VertexId,
    variant: Variant,
    exec: &E,
    grain: usize,
) -> ParSsspRun {
    let state = TraversalState::new(graph.num_vertices());
    let level_loop = LevelLoop::new(graph, exec, grain, DirectionConfig::default());
    let run = match variant {
        Variant::BranchAvoiding => level_loop.run(&state, source, &BranchAvoidingLevel::<false>),
        Variant::BranchBased => level_loop.run(&state, source, &BranchBasedLevel::<false>),
        Variant::Auto => level_loop.run(&state, source, &auto_level(false)),
    };
    ParSsspRun {
        result: SsspResult::new(state.into_distances(), run.directions.len()),
        directions: run.directions,
        counters: run.counters,
        threads: exec.parallelism(),
    }
}

/// Shared monitored driver behind the traced and cancellable unit-weight
/// entry points: run header, cancellable level loop, pool-degradation
/// warning, metrics replay and an outcome-marked trailer.
fn par_sssp_unit_run_impl<G: AdjacencySource, S: TraceSink>(
    graph: &G,
    source: VertexId,
    config: &PoolConfig,
    variant: Variant,
    sink: &S,
    cancel: Option<&CancelToken>,
) -> (ParSsspRun, RunOutcome) {
    let monitor = PoolMonitor::new();
    let pool = WorkerPool::with_monitor(config.threads, Arc::clone(&monitor));
    let scope = TraceRun::start(
        sink,
        TraceEvent::RunStart {
            kernel: "sssp".to_string(),
            variant: variant.as_str().to_string(),
            vertices: graph.num_vertices(),
            edges: graph.num_edge_slots(),
            threads: pool.threads(),
            grain: config.grain,
            delta: None,
            root: Some(source),
            footprint: Some(run_footprint(graph.footprint())),
        },
    );
    let state = TraversalState::new(graph.num_vertices());
    let level_loop = LevelLoop::new(graph, &pool, config.grain, DirectionConfig::default());
    let (run, outcome) = match variant {
        SsspVariant::BranchAvoiding => {
            level_loop.run_loop(&state, source, &BranchAvoidingLevel::<true>, &scope, cancel)
        }
        SsspVariant::BranchBased => {
            level_loop.run_loop(&state, source, &BranchBasedLevel::<true>, &scope, cancel)
        }
        SsspVariant::Auto => level_loop.run_loop(&state, source, &auto_level(true), &scope, cancel),
    };
    emit_degradation_warning(&pool, &scope);
    scope.finish_with_outcome(Some(monitor.take_metrics()), &outcome);
    (
        ParSsspRun {
            result: SsspResult::new(state.into_distances(), run.directions.len()),
            directions: run.directions,
            counters: run.counters,
            threads: pool.threads(),
        },
        outcome,
    )
}

/// Branch-avoiding weighted relaxation: one unconditional `fetch_min` per
/// edge with the masked edge-class select and the predicated discovery
/// enqueue — no data-dependent branch in the inner loop. With `TALLY`,
/// every operation is accounted into the chunk's [`ThreadTally`].
pub struct BranchAvoidingRelax<const TALLY: bool>;

impl<W: WeightedAdjacencySource, const TALLY: bool> BucketKernel<W> for BranchAvoidingRelax<TALLY> {
    fn instrumented(&self) -> bool {
        TALLY
    }

    fn relax_chunk(
        &self,
        ctx: &BucketCtx<'_, W>,
        frontier: &[(VertexId, u32)],
        range: Range<usize>,
        chunk_edges: usize,
        class: EdgeClass,
        tally: &mut ThreadTally,
    ) -> Vec<VertexId> {
        let distances = ctx.state.distances();
        let delta = ctx.delta;
        // One slot per potential claim plus the overflow slot the
        // unconditional write of a non-claim lands in. Unlike BFS, a chunk
        // can claim the same vertex more than once (repeated improvements
        // through different edges), so the bound is the chunk's edge
        // count, not `|V|`.
        let mut buffer = vec![0 as VertexId; chunk_edges + 1];
        let mut len = 0usize;
        for &(v, dv) in &frontier[range] {
            if TALLY {
                tally.vertices += 1;
                tally.branches += 1; // frontier-loop bound
            }
            for (w, wt) in ctx.graph.weighted_neighbor_cursor(v) {
                // Predicated class select: an edge of the wrong class
                // relaxes with INFINITY, which `fetch_min` ignores.
                let wanted = (wt <= delta) == (class == EdgeClass::Light);
                let candidate = if wanted {
                    dv.saturating_add(wt)
                } else {
                    INFINITY
                };
                // The priority write: unconditional atomic minimum.
                let prev = distances[w as usize].fetch_min(candidate, Relaxed);
                // Unconditional candidate write; the slot is claimed by
                // the branch-free length increment iff this edge improved
                // the distance.
                buffer[len] = w;
                len += usize::from(prev > candidate);
                if TALLY {
                    tally.edges += 1;
                    // fetch_min = load + predicated min + store; the class
                    // select is another predicated move; the queue slot
                    // write is unconditional; length advance is an add.
                    tally.loads += 1;
                    tally.stores += 2;
                    tally.conditional_moves += 3;
                    tally.branches += 1; // neighbour-loop bound only
                    tally.updates += u64::from(prev > candidate);
                }
            }
        }
        buffer.truncate(len);
        buffer
    }
}

/// Branch-based weighted relaxation: test the distance, then claim it
/// with a `compare_exchange` retry loop (the weighted generalisation of
/// the BFS test-and-CAS — a single CAS no longer suffices because a
/// weighted cell can improve several times). With `TALLY`, every
/// operation is accounted into the chunk's [`ThreadTally`].
pub struct BranchBasedRelax<const TALLY: bool>;

impl<W: WeightedAdjacencySource, const TALLY: bool> BucketKernel<W> for BranchBasedRelax<TALLY> {
    fn instrumented(&self) -> bool {
        TALLY
    }

    fn relax_chunk(
        &self,
        ctx: &BucketCtx<'_, W>,
        frontier: &[(VertexId, u32)],
        range: Range<usize>,
        _chunk_edges: usize,
        class: EdgeClass,
        tally: &mut ThreadTally,
    ) -> Vec<VertexId> {
        let distances = ctx.state.distances();
        let delta = ctx.delta;
        let mut local = Vec::new();
        for &(v, dv) in &frontier[range] {
            if TALLY {
                tally.vertices += 1;
                tally.branches += 1; // frontier-loop bound
            }
            for (w, wt) in ctx.graph.weighted_neighbor_cursor(v) {
                if TALLY {
                    tally.edges += 1;
                    tally.loads += 1;
                    tally.branches += 2; // neighbour-loop bound + class test
                    tally.data_branches += 1;
                }
                // Data-dependent class test, then the distance test.
                if (wt <= delta) != (class == EdgeClass::Light) {
                    continue;
                }
                let candidate = dv.saturating_add(wt);
                if TALLY {
                    tally.loads += 1;
                    tally.branches += 1; // improvement test
                    tally.data_branches += 1;
                }
                let mut cur = distances[w as usize].load(Relaxed);
                while candidate < cur {
                    if TALLY {
                        tally.loads += 1;
                        tally.branches += 1; // CAS outcome
                        tally.data_branches += 1;
                    }
                    match distances[w as usize].compare_exchange(cur, candidate, Relaxed, Relaxed) {
                        Ok(_) => {
                            if TALLY {
                                tally.stores += 2; // distance + queue slot
                                tally.updates += 1;
                            }
                            local.push(w);
                            break;
                        }
                        Err(actual) => cur = actual,
                    }
                }
            }
        }
        local
    }
}

/// Result of an instrumented parallel weighted SSSP run.
#[derive(Clone, Debug)]
pub struct ParWssspRun {
    /// Distances and total phase count (light phases + improving heavy
    /// passes), deterministic across thread counts.
    pub result: SsspResult,
    /// Number of buckets that settled at least one vertex.
    pub buckets_settled: usize,
    /// How many of the phases were heavy passes.
    pub heavy_phases: usize,
    /// Per-phase counters merged across worker threads — populated only
    /// on instrumented/observed runs, empty otherwise.
    pub counters: RunCounters,
    /// Worker count the run actually used.
    pub threads: usize,
}

/// The adaptive weighted relaxation behind [`Variant::Auto`]: samples
/// early bucket passes branch-based with tallies, then hot-switches to
/// the advisor's pick.
#[allow(clippy::type_complexity)]
fn auto_relax(
    tally_always: bool,
) -> AutoSwitch<
    BranchBasedRelax<true>,
    BranchBasedRelax<false>,
    BranchAvoidingRelax<true>,
    BranchAvoidingRelax<false>,
> {
    AutoSwitch::new(
        BranchBasedRelax::<true>,
        BranchBasedRelax::<false>,
        BranchAvoidingRelax::<true>,
        BranchAvoidingRelax::<false>,
        AdvisorConfig::default(),
        tally_always,
    )
}

/// The unified weighted request driver behind
/// [`crate::request::run_sssp_weighted`]: observed runs (trace sink,
/// cancel token or resume distances) go through the monitored driver,
/// everything else through the unmonitored fast path with the tally
/// compiled in or out by `config.instrumented`.
pub(crate) fn run_weighted_request<W: WeightedAdjacencySource, S: TraceSink>(
    graph: &W,
    source: VertexId,
    delta: u32,
    variant: Variant,
    initial: Option<&[u32]>,
    config: &RunConfig<'_, S>,
) -> (ParWssspRun, RunOutcome) {
    let pool_config = config.pool_config();
    if config.observed() || initial.is_some() {
        return par_sssp_weighted_run_impl(
            graph,
            source,
            delta,
            &pool_config,
            variant,
            initial,
            config.sink,
            config.cancel,
        );
    }
    let pool = WorkerPool::with_config(&pool_config);
    let state = TraversalState::new(graph.num_vertices());
    let bucket_loop = BucketLoop::new(graph, &pool, pool_config.grain, delta);
    let run = match (variant, config.instrumented) {
        (Variant::BranchAvoiding, false) => {
            bucket_loop.run(&state, source, &BranchAvoidingRelax::<false>)
        }
        (Variant::BranchAvoiding, true) => {
            bucket_loop.run(&state, source, &BranchAvoidingRelax::<true>)
        }
        (Variant::BranchBased, false) => {
            bucket_loop.run(&state, source, &BranchBasedRelax::<false>)
        }
        (Variant::BranchBased, true) => bucket_loop.run(&state, source, &BranchBasedRelax::<true>),
        (Variant::Auto, tally) => bucket_loop.run(&state, source, &auto_relax(tally)),
    };
    (
        ParWssspRun {
            result: SsspResult::new(state.into_distances(), run.phases),
            buckets_settled: run.bucket_bounds.len(),
            heavy_phases: run.heavy_phases,
            counters: run.counters,
            threads: pool.threads(),
        },
        RunOutcome::Completed,
    )
}

/// [`run_weighted_request`] on an explicit executor: plain kernels, the
/// bench seam.
pub(crate) fn run_weighted_request_on<W: WeightedAdjacencySource, E: Execute>(
    graph: &W,
    source: VertexId,
    delta: u32,
    variant: Variant,
    exec: &E,
    grain: usize,
) -> ParWssspRun {
    let state = TraversalState::new(graph.num_vertices());
    let bucket_loop = BucketLoop::new(graph, exec, grain, delta);
    let run = match variant {
        Variant::BranchAvoiding => bucket_loop.run(&state, source, &BranchAvoidingRelax::<false>),
        Variant::BranchBased => bucket_loop.run(&state, source, &BranchBasedRelax::<false>),
        Variant::Auto => bucket_loop.run(&state, source, &auto_relax(false)),
    };
    ParWssspRun {
        result: SsspResult::new(state.into_distances(), run.phases),
        buckets_settled: run.bucket_bounds.len(),
        heavy_phases: run.heavy_phases,
        counters: run.counters,
        threads: exec.parallelism(),
    }
}

/// Shared monitored driver behind the traced, cancellable and resumed
/// weighted entry points. With `initial` distances the bucket loop
/// re-files every finite-distance vertex and converges from that
/// upper-bound state instead of starting at the source.
#[allow(clippy::too_many_arguments)]
fn par_sssp_weighted_run_impl<W: WeightedAdjacencySource, S: TraceSink>(
    graph: &W,
    source: VertexId,
    delta: u32,
    config: &PoolConfig,
    variant: Variant,
    initial: Option<&[u32]>,
    sink: &S,
    cancel: Option<&CancelToken>,
) -> (ParWssspRun, RunOutcome) {
    let monitor = PoolMonitor::new();
    let pool = WorkerPool::with_monitor(config.threads, Arc::clone(&monitor));
    let scope = TraceRun::start(
        sink,
        TraceEvent::RunStart {
            kernel: "sssp-weighted".to_string(),
            variant: variant.as_str().to_string(),
            vertices: graph.num_vertices(),
            edges: graph.num_edge_slots(),
            threads: pool.threads(),
            grain: config.grain,
            delta: Some(delta),
            root: Some(source),
            footprint: Some(run_footprint(graph.footprint())),
        },
    );
    let resume = initial.is_some();
    let state = match initial {
        Some(distances) => TraversalState::from_distances(distances),
        None => TraversalState::new(graph.num_vertices()),
    };
    let bucket_loop = BucketLoop::new(graph, &pool, config.grain, delta);
    let (run, outcome) = match variant {
        SsspVariant::BranchAvoiding => bucket_loop.run_loop(
            &state,
            source,
            &BranchAvoidingRelax::<true>,
            &scope,
            cancel,
            resume,
        ),
        SsspVariant::BranchBased => bucket_loop.run_loop(
            &state,
            source,
            &BranchBasedRelax::<true>,
            &scope,
            cancel,
            resume,
        ),
        SsspVariant::Auto => {
            bucket_loop.run_loop(&state, source, &auto_relax(true), &scope, cancel, resume)
        }
    };
    emit_degradation_warning(&pool, &scope);
    scope.finish_with_outcome(Some(monitor.take_metrics()), &outcome);
    (
        ParWssspRun {
            result: SsspResult::new(state.into_distances(), run.phases),
            buckets_settled: run.bucket_bounds.len(),
            heavy_phases: run.heavy_phases,
            counters: run.counters,
            threads: pool.threads(),
        },
        outcome,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ScopedExecutor;
    use bga_graph::generators::{
        barabasi_albert, complete_graph, grid_2d, path_graph, star_graph, MeshStencil,
    };
    use bga_graph::properties::bfs_distances_reference;
    use bga_graph::{CsrGraph, GraphBuilder};
    use bga_kernels::sssp::sssp_unit_delta_stepping;

    fn shapes() -> Vec<CsrGraph> {
        vec![
            GraphBuilder::undirected(1).build(),
            GraphBuilder::undirected(6)
                .add_edges([(0, 1), (1, 2), (3, 4)])
                .build(),
            path_graph(50),
            star_graph(35),
            complete_graph(10),
            grid_2d(12, 8, MeshStencil::Moore),
            barabasi_albert(600, 3, 17),
            // Above PARALLEL_GRAIN, so per-phase chunking fans out for real.
            barabasi_albert(4_000, 4, 29),
        ]
    }

    fn unit<G: AdjacencySource>(g: &G, source: VertexId, threads: usize) -> SsspResult {
        run_unit_request(
            g,
            source,
            Variant::BranchAvoiding,
            &RunConfig::new().threads(threads),
        )
        .0
        .result
    }

    fn unit_variant<G: AdjacencySource>(
        g: &G,
        source: VertexId,
        threads: usize,
        variant: Variant,
    ) -> SsspResult {
        run_unit_request(g, source, variant, &RunConfig::new().threads(threads))
            .0
            .result
    }

    fn unit_instrumented<G: AdjacencySource>(
        g: &G,
        source: VertexId,
        threads: usize,
        variant: Variant,
    ) -> ParSsspRun {
        run_unit_request(
            g,
            source,
            variant,
            &RunConfig::new().threads(threads).instrumented(true),
        )
        .0
    }

    fn weighted<W: WeightedAdjacencySource>(
        w: &W,
        source: VertexId,
        delta: u32,
        threads: usize,
        variant: Variant,
    ) -> SsspResult {
        run_weighted_request(
            w,
            source,
            delta,
            variant,
            None,
            &RunConfig::new().threads(threads),
        )
        .0
        .result
    }

    fn weighted_instrumented<W: WeightedAdjacencySource>(
        w: &W,
        source: VertexId,
        delta: u32,
        threads: usize,
        variant: Variant,
    ) -> ParWssspRun {
        run_weighted_request(
            w,
            source,
            delta,
            variant,
            None,
            &RunConfig::new().threads(threads).instrumented(true),
        )
        .0
    }

    #[test]
    fn distances_and_phases_match_the_sequential_reference() {
        for g in &shapes() {
            for source in [0u32, (g.num_vertices() as u32).saturating_sub(1)] {
                let seq = sssp_unit_delta_stepping(g, source);
                assert_eq!(seq.distances(), &bfs_distances_reference(g, source)[..]);
                for threads in [1, 2, 8] {
                    for variant in [SsspVariant::BranchBased, SsspVariant::BranchAvoiding] {
                        let par = unit_variant(g, source, threads, variant);
                        assert_eq!(
                            par.distances(),
                            seq.distances(),
                            "{variant:?}, {threads} threads, source {source}"
                        );
                        assert_eq!(
                            par.phases(),
                            seq.phases(),
                            "{variant:?}, {threads} threads, source {source}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn executors_and_grains_agree() {
        let g = barabasi_albert(1_500, 3, 19);
        let expected = sssp_unit_delta_stepping(&g, 0);
        let pool = WorkerPool::new(4);
        let scoped = ScopedExecutor::new(4);
        // Grain 1 forces every settling phase to fan out.
        for grain in [1, 64, 4096] {
            for variant in [SsspVariant::BranchBased, SsspVariant::BranchAvoiding] {
                let run = run_unit_request_on(&g, 0, variant, &pool, grain).result;
                assert_eq!(run.distances(), expected.distances());
                assert_eq!(run.phases(), expected.phases());
            }
            let run = run_unit_request_on(&g, 0, Variant::BranchAvoiding, &scoped, grain).result;
            assert_eq!(run.distances(), expected.distances());
        }
    }

    #[test]
    fn direction_flip_engages_on_explosive_frontiers() {
        // A star's second phase covers every remaining vertex at once,
        // which crosses the default bottom-up threshold — the SSSP client
        // inherits the engine's frontier flip, not just top-down levels.
        let g = star_graph(2_000);
        let run = unit_instrumented(&g, 0, 2, Variant::BranchAvoiding);
        assert!(run.bottom_up_phases() > 0);
        assert_eq!(run.result.max_distance(), Some(1));
        assert_eq!(run.result.reached_count(), 2_000);
    }

    #[test]
    fn instrumented_phases_cover_the_whole_settlement() {
        let g = barabasi_albert(800, 3, 7);
        for variant in [SsspVariant::BranchBased, SsspVariant::BranchAvoiding] {
            for threads in [1, 2, 8] {
                let run = unit_instrumented(&g, 0, threads, variant);
                assert_eq!(run.threads, threads);
                assert_eq!(run.counters.num_steps(), run.directions.len());
                assert_eq!(run.result.phases(), run.directions.len());
                // Every settled vertex beyond the source was claimed by
                // exactly one phase's relaxations.
                let updates: u64 = run.counters.steps.iter().map(|s| s.updates).sum();
                assert_eq!(updates as usize, run.result.reached_count() - 1);
            }
        }
    }

    #[test]
    fn out_of_range_source_reaches_nothing() {
        let g = path_graph(5);
        for threads in [1, 4] {
            let run = unit(&g, 99, threads);
            assert_eq!(run.reached_count(), 0);
            assert_eq!(run.phases(), 0);
            assert_eq!(run.max_distance(), None);
        }
    }

    #[test]
    fn branch_contrast_survives_parallelism() {
        // A long thin mesh keeps every frontier under the bottom-up
        // threshold, so both runs stay on the top-down kernels whose
        // instruction mix is the contrast under test.
        let g = grid_2d(100, 16, MeshStencil::VonNeumann);
        let based = unit_instrumented(&g, 0, 4, Variant::BranchBased);
        let avoiding = unit_instrumented(&g, 0, 4, Variant::BranchAvoiding);
        assert_eq!(based.result.distances(), avoiding.result.distances());
        let b = based.counters.total();
        let a = avoiding.counters.total();
        assert!(b.branches > a.branches);
        assert!(a.stores > b.stores);
        assert!(b.branch_mispredictions > 0);
        assert_eq!(a.branch_mispredictions, 0);
    }

    // ---- weighted (bucket-loop) client ----

    use bga_graph::weighted::{uniform_weights, unit_weights};
    use bga_kernels::sssp::{sssp_delta_stepping, sssp_dijkstra};

    #[test]
    fn weighted_distances_match_dijkstra_for_every_delta_and_thread_count() {
        for (seed, g) in shapes().iter().enumerate() {
            let wg = uniform_weights(g, 24, seed as u64);
            for source in [0u32, (g.num_vertices() as u32).saturating_sub(1)] {
                let expected = sssp_dijkstra(&wg, source);
                for delta in [1u32, 4, 32] {
                    assert_eq!(
                        sssp_delta_stepping(&wg, source, delta).distances(),
                        expected.distances(),
                        "sequential delta-stepping diverged, delta {delta}"
                    );
                    for threads in [1, 2, 8] {
                        for variant in [SsspVariant::BranchBased, SsspVariant::BranchAvoiding] {
                            let par = weighted(&wg, source, delta, threads, variant);
                            assert_eq!(
                                par.distances(),
                                expected.distances(),
                                "{variant:?}, delta {delta}, {threads} threads, source {source}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn weighted_phase_structure_is_deterministic_across_thread_counts() {
        let wg = uniform_weights(&barabasi_albert(1_200, 3, 23), 20, 7);
        for delta in [1u32, 4, 32] {
            for variant in [SsspVariant::BranchBased, SsspVariant::BranchAvoiding] {
                let reference = weighted_instrumented(&wg, 0, delta, 1, variant);
                for threads in [2, 8] {
                    let run = weighted_instrumented(&wg, 0, delta, threads, variant);
                    assert_eq!(run.result.phases(), reference.result.phases());
                    assert_eq!(run.buckets_settled, reference.buckets_settled);
                    assert_eq!(run.heavy_phases, reference.heavy_phases);
                    assert_eq!(run.result.distances(), reference.result.distances());
                }
            }
        }
    }

    #[test]
    fn weighted_executors_and_grains_agree() {
        let wg = uniform_weights(&barabasi_albert(1_500, 3, 19), 16, 3);
        let expected = sssp_dijkstra(&wg, 0);
        let pool = WorkerPool::new(4);
        let scoped = ScopedExecutor::new(4);
        // Grain 1 forces every relaxation pass to fan out.
        for grain in [1, 64, 4096] {
            for variant in [SsspVariant::BranchBased, SsspVariant::BranchAvoiding] {
                let run = run_weighted_request_on(&wg, 0, 4, variant, &pool, grain).result;
                assert_eq!(run.distances(), expected.distances());
            }
            let run =
                run_weighted_request_on(&wg, 0, 4, Variant::BranchAvoiding, &scoped, grain).result;
            assert_eq!(run.distances(), expected.distances());
        }
    }

    #[test]
    fn unit_weighted_graph_reduces_to_the_unit_client() {
        let g = barabasi_albert(600, 3, 17);
        let wg = unit_weights(&g);
        let unit = unit(&g, 0, 4);
        let weighted = weighted(&wg, 0, 1, 4, Variant::BranchAvoiding);
        assert_eq!(weighted.distances(), unit.distances());
        // Δ = 1 on unit weights: buckets are levels, no heavy edges, one
        // phase per bucket.
        let run = weighted_instrumented(&wg, 0, 1, 2, Variant::BranchAvoiding);
        assert_eq!(run.heavy_phases, 0);
        assert_eq!(run.result.phases(), run.buckets_settled);
        assert_eq!(run.result.phases(), unit.phases());
    }

    #[test]
    fn weighted_heavy_passes_engage_when_delta_splits_the_weights() {
        // Weights 1..=24 with Δ = 4: plenty of heavy edges, and they must
        // actually run as deferred passes.
        let wg = uniform_weights(&barabasi_albert(800, 3, 7), 24, 7);
        let run = weighted_instrumented(&wg, 0, 4, 2, Variant::BranchAvoiding);
        assert!(run.heavy_phases > 0, "expected deferred heavy passes");
        assert!(run.result.phases() > run.heavy_phases);
        // Instrumented counters cover every pass.
        assert!(run.counters.num_steps() > 0);
        assert_eq!(run.threads, 2);
    }

    #[test]
    fn weighted_branch_contrast_survives_parallelism() {
        let wg = uniform_weights(&grid_2d(60, 16, MeshStencil::VonNeumann), 8, 5);
        let based = weighted_instrumented(&wg, 0, 3, 4, Variant::BranchBased);
        let avoiding = weighted_instrumented(&wg, 0, 3, 4, Variant::BranchAvoiding);
        assert_eq!(based.result.distances(), avoiding.result.distances());
        let b = based.counters.total();
        let a = avoiding.counters.total();
        // The avoiding kernel trades data-dependent branches for stores
        // and predicated moves.
        assert!(b.branches > a.branches);
        assert!(a.stores > b.stores);
        assert!(b.branch_mispredictions > 0);
        assert_eq!(a.branch_mispredictions, 0);
    }

    #[test]
    fn weighted_huge_weights_do_not_blow_up_the_bucket_structure() {
        use bga_graph::weighted::WeightedGraphBuilder;
        // The bucket loop's pending queues are sparse; a billion-weight
        // edge must complete instantly instead of materialising a billion
        // empty buckets.
        let g = WeightedGraphBuilder::undirected(3)
            .add_edges([(0, 1, 1_000_000_000), (1, 2, 3)])
            .build();
        for variant in [SsspVariant::BranchBased, SsspVariant::BranchAvoiding] {
            let run = weighted(&g, 0, 1, 2, variant);
            assert_eq!(run.distances(), &[0, 1_000_000_000, 1_000_000_003]);
        }
    }

    #[test]
    fn unit_phase_budget_cuts_at_an_exact_level() {
        use crate::cancel::InterruptReason;
        let g = path_graph(40);
        let token = CancelToken::new().with_phase_budget(6);
        let (run, outcome) = run_unit_request(
            &g,
            0,
            Variant::BranchAvoiding,
            &RunConfig::new().threads(2).cancel(&token),
        );
        assert_eq!(
            outcome.reason(),
            Some(InterruptReason::PhaseBudgetExhausted)
        );
        for (v, &d) in run.result.distances().iter().enumerate() {
            if v <= 6 {
                assert_eq!(d, v as u32);
            } else {
                assert_eq!(d, INFINITY);
            }
        }
    }

    #[test]
    fn weighted_interrupted_runs_resume_bit_identical() {
        let wg = uniform_weights(&barabasi_albert(700, 3, 11), 20, 9);
        let expected = sssp_dijkstra(&wg, 0);
        for variant in [SsspVariant::BranchBased, SsspVariant::BranchAvoiding] {
            let token = CancelToken::new().with_phase_budget(3);
            let (partial, outcome) = run_weighted_request(
                &wg,
                0,
                4,
                variant,
                None,
                &RunConfig::new().threads(2).cancel(&token),
            );
            assert!(!outcome.is_completed(), "{variant:?} run was not cut");
            // Partial distances are valid monotone upper bounds.
            for (v, &d) in partial.result.distances().iter().enumerate() {
                assert!(d >= expected.distances()[v], "vertex {v} below optimum");
            }
            assert_ne!(partial.result.distances(), expected.distances());
            let resumed = run_weighted_request(
                &wg,
                0,
                4,
                variant,
                Some(partial.result.distances()),
                &RunConfig::new().threads(2),
            )
            .0;
            assert_eq!(resumed.result.distances(), expected.distances());
        }
        // Resuming from scratch (all INFINITY except the source's own
        // zero after seeding) degenerates to a plain run.
        let from_scratch = run_weighted_request(
            &wg,
            0,
            4,
            Variant::BranchAvoiding,
            Some(&vec![INFINITY; wg.num_vertices()]),
            &RunConfig::new().threads(2),
        )
        .0;
        assert_eq!(from_scratch.result.distances(), expected.distances());
    }

    #[test]
    fn weighted_uncancelled_tokens_complete_and_match() {
        let wg = uniform_weights(&barabasi_albert(600, 3, 17), 16, 3);
        let token = CancelToken::new();
        let (run, outcome) = run_weighted_request(
            &wg,
            0,
            4,
            Variant::BranchAvoiding,
            None,
            &RunConfig::new().threads(2).cancel(&token),
        );
        assert!(outcome.is_completed());
        assert_eq!(run.result.distances(), sssp_dijkstra(&wg, 0).distances());
    }

    #[test]
    fn weighted_out_of_range_source_and_degenerate_graphs() {
        use bga_graph::GraphBuilder;
        let wg = unit_weights(&path_graph(5));
        for threads in [1, 4] {
            let run = weighted(&wg, 99, 2, threads, Variant::BranchAvoiding);
            assert_eq!(run.reached_count(), 0);
            assert_eq!(run.phases(), 0);
        }
        let empty = unit_weights(&GraphBuilder::undirected(0).build());
        let run = weighted(&empty, 0, 1, 2, Variant::BranchAvoiding);
        assert_eq!(run.distances().len(), 0);
        assert_eq!(run.phases(), 0);
    }

    #[test]
    fn auto_variant_matches_the_static_distances() {
        let g = barabasi_albert(2_000, 3, 13);
        let wg = uniform_weights(&g, 12, 5);
        let expected_unit = unit(&g, 0, 2);
        let expected_weighted = sssp_dijkstra(&wg, 0);
        for threads in [1, 2, 8] {
            let unit_auto = run_unit_request(
                &g,
                0,
                Variant::Auto,
                &RunConfig::new().threads(threads).grain(1),
            )
            .0;
            assert_eq!(
                unit_auto.result.distances(),
                expected_unit.distances(),
                "unit auto, {threads} threads"
            );
            let weighted_auto = run_weighted_request(
                &wg,
                0,
                4,
                Variant::Auto,
                None,
                &RunConfig::new().threads(threads).grain(1),
            )
            .0;
            assert_eq!(
                weighted_auto.result.distances(),
                expected_weighted.distances(),
                "weighted auto, {threads} threads"
            );
        }
        // Instrumented auto tallies every dispatch (same step count as a
        // static instrumented run); plain auto only the sampled prefix.
        let instr_static = weighted_instrumented(&wg, 0, 4, 2, Variant::BranchAvoiding);
        let instr = weighted_instrumented(&wg, 0, 4, 2, Variant::Auto);
        assert_eq!(instr.result.distances(), expected_weighted.distances());
        assert_eq!(
            instr.counters.num_steps(),
            instr_static.counters.num_steps()
        );
        let plain = run_weighted_request(&wg, 0, 4, Variant::Auto, None, &RunConfig::new()).0;
        assert!(plain.counters.num_steps() < instr.counters.num_steps());
    }
}
