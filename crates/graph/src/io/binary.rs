//! `bga-csr-v1`: binary on-disk format for [`CompressedCsrGraph`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic "BGACSR1\0"
//! 8       4     version (u32, currently 1)
//! 12      4     flags (u32; bit 0 = undirected)
//! 16      8     num_vertices (u64)
//! 24      8     num_edge_slots (u64)
//! 32      8     payload_len (u64, bytes, excluding decoder padding)
//! 40      8     index_words (u64, count of 64-bit bitmap words)
//! 48      8w    offsets bitmap words (u64 each)
//! 48+8w   p     delta-varint payload bytes
//! ```
//!
//! The header and the bitmap words are 8-byte aligned from the start of
//! the file, and the payload follows as a plain byte run — a future mmap
//! loader can point the rank/select index and the decoder straight into a
//! mapped file without any byte shuffling. Everything after the fixed
//! header is validated by [`CompressedCsrGraph::from_parts`], so
//! truncated or bit-flipped files surface as structured [`IoError`]s, not
//! panics.

use super::IoError;
use crate::compressed::CompressedCsrGraph;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes opening every `bga-csr-v1` file.
pub const BGA_CSR_MAGIC: [u8; 8] = *b"BGACSR1\0";

/// Current format version.
pub const BGA_CSR_VERSION: u32 = 1;

const FLAG_UNDIRECTED: u32 = 1;
const HEADER_BYTES: usize = 48;

fn parse_error(message: String) -> IoError {
    IoError::Parse { line: 0, message }
}

/// Serializes a compressed graph in the `bga-csr-v1` layout.
pub fn write_compressed_binary<W: Write>(
    writer: &mut W,
    graph: &CompressedCsrGraph,
) -> Result<(), IoError> {
    writer.write_all(&BGA_CSR_MAGIC)?;
    writer.write_all(&BGA_CSR_VERSION.to_le_bytes())?;
    let flags = if graph.is_undirected() {
        FLAG_UNDIRECTED
    } else {
        0
    };
    writer.write_all(&flags.to_le_bytes())?;
    writer.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    writer.write_all(&(graph.num_edge_slots() as u64).to_le_bytes())?;
    writer.write_all(&(graph.payload().len() as u64).to_le_bytes())?;
    writer.write_all(&(graph.index_words().len() as u64).to_le_bytes())?;
    for &word in graph.index_words() {
        writer.write_all(&word.to_le_bytes())?;
    }
    writer.write_all(graph.payload())?;
    Ok(())
}

/// Serializes a compressed graph to a `Vec<u8>` in the `bga-csr-v1`
/// layout.
pub fn write_compressed_binary_bytes(graph: &CompressedCsrGraph) -> Vec<u8> {
    let mut bytes =
        Vec::with_capacity(HEADER_BYTES + graph.index_words().len() * 8 + graph.payload().len());
    write_compressed_binary(&mut bytes, graph).expect("writing to a Vec cannot fail");
    bytes
}

/// Writes a compressed graph to `path` in the `bga-csr-v1` layout.
pub fn write_compressed_binary_file<P: AsRef<Path>>(
    path: P,
    graph: &CompressedCsrGraph,
) -> Result<(), IoError> {
    let mut writer = BufWriter::new(File::create(path)?);
    write_compressed_binary(&mut writer, graph)?;
    writer.flush()?;
    Ok(())
}

fn take_u64(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(bytes[offset..offset + 8].try_into().unwrap())
}

/// Parses a `bga-csr-v1` byte stream, validating the header, the counts,
/// and (via [`CompressedCsrGraph::from_parts`]) the full varint payload.
pub fn read_compressed_binary_bytes(bytes: &[u8]) -> Result<CompressedCsrGraph, IoError> {
    if bytes.len() < HEADER_BYTES {
        return Err(parse_error(format!(
            "file too short for a bga-csr-v1 header: {} bytes",
            bytes.len()
        )));
    }
    if bytes[..8] != BGA_CSR_MAGIC {
        return Err(parse_error("bad magic: not a bga-csr-v1 file".to_string()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != BGA_CSR_VERSION {
        return Err(parse_error(format!(
            "unsupported bga-csr version {version} (expected {BGA_CSR_VERSION})"
        )));
    }
    let flags = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if flags & !FLAG_UNDIRECTED != 0 {
        return Err(parse_error(format!("unknown flag bits {flags:#x}")));
    }
    let num_vertices = usize::try_from(take_u64(bytes, 16))
        .map_err(|_| parse_error("vertex count overflows usize".to_string()))?;
    let num_edge_slots = usize::try_from(take_u64(bytes, 24))
        .map_err(|_| parse_error("edge count overflows usize".to_string()))?;
    let payload_len = usize::try_from(take_u64(bytes, 32))
        .map_err(|_| parse_error("payload length overflows usize".to_string()))?;
    let index_words = usize::try_from(take_u64(bytes, 40))
        .map_err(|_| parse_error("index word count overflows usize".to_string()))?;

    let expected =
        HEADER_BYTES
            .checked_add(index_words.checked_mul(8).ok_or_else(|| {
                parse_error("index word count overflows the file size".to_string())
            })?)
            .and_then(|n| n.checked_add(payload_len))
            .ok_or_else(|| parse_error("header sizes overflow the file size".to_string()))?;
    if bytes.len() != expected {
        return Err(parse_error(format!(
            "file is {} bytes, header describes {expected}",
            bytes.len()
        )));
    }

    let words: Vec<u64> = bytes[HEADER_BYTES..HEADER_BYTES + index_words * 8]
        .chunks_exact(8)
        .map(|chunk| u64::from_le_bytes(chunk.try_into().unwrap()))
        .collect();
    let payload = bytes[HEADER_BYTES + index_words * 8..].to_vec();

    CompressedCsrGraph::from_parts(
        num_vertices,
        num_edge_slots,
        flags & FLAG_UNDIRECTED != 0,
        payload,
        words,
    )
    .map_err(parse_error)
}

/// Reads a `bga-csr-v1` file from `path`.
pub fn read_compressed_binary_file<P: AsRef<Path>>(path: P) -> Result<CompressedCsrGraph, IoError> {
    let mut bytes = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
    let bytes = apply_binary_read_faults(bytes);
    read_compressed_binary_bytes(&bytes)
}

/// Byte-level twin of [`super::apply_read_faults`] for the binary reader:
/// under `BGA_FAULT=io:short-read` (debug builds only) the file is
/// truncated to half its bytes so the structured-error path is exercised.
fn apply_binary_read_faults(bytes: Vec<u8>) -> Vec<u8> {
    if cfg!(debug_assertions) {
        if let Ok(spec) = std::env::var("BGA_FAULT") {
            if spec.split(',').any(|part| part.trim() == "io:short-read") {
                let keep = bytes.len() / 2;
                return bytes[..keep].to_vec();
            }
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, grid_2d, MeshStencil};

    #[test]
    fn binary_round_trips_suite_like_graphs() {
        for csr in [
            barabasi_albert(400, 4, 7),
            grid_2d(15, 17, MeshStencil::Moore),
        ] {
            let compressed = CompressedCsrGraph::from_csr(&csr);
            let bytes = write_compressed_binary_bytes(&compressed);
            let back = read_compressed_binary_bytes(&bytes).unwrap();
            assert_eq!(back, compressed);
            assert_eq!(back.to_csr(), csr);
        }
    }

    #[test]
    fn header_and_payload_are_eight_byte_aligned() {
        let compressed = CompressedCsrGraph::from_csr(&barabasi_albert(100, 3, 1));
        let bytes = write_compressed_binary_bytes(&compressed);
        assert_eq!(&bytes[..8], &BGA_CSR_MAGIC);
        assert_eq!(HEADER_BYTES % 8, 0);
        assert_eq!(
            bytes.len(),
            HEADER_BYTES + compressed.index_words().len() * 8 + compressed.payload().len()
        );
    }

    #[test]
    fn corrupt_files_yield_structured_errors() {
        let compressed = CompressedCsrGraph::from_csr(&barabasi_albert(60, 2, 9));
        let bytes = write_compressed_binary_bytes(&compressed);

        // Truncations at every length strictly shorter than the file.
        for cut in [0, 4, HEADER_BYTES - 1, HEADER_BYTES, bytes.len() - 1] {
            let err = read_compressed_binary_bytes(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, IoError::Parse { line: 0, .. }), "cut {cut}");
        }
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            read_compressed_binary_bytes(&bad),
            Err(IoError::Parse { .. })
        ));
        // Unsupported version.
        let mut bad = bytes.clone();
        bad[8] = 9;
        let message = read_compressed_binary_bytes(&bad).unwrap_err().to_string();
        assert!(message.contains("version"), "{message}");
        // Unknown flags.
        let mut bad = bytes.clone();
        bad[12] = 0x80;
        assert!(read_compressed_binary_bytes(&bad).is_err());
        // Payload bit flips never panic.
        for i in HEADER_BYTES..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x81;
            let _ = read_compressed_binary_bytes(&bad);
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("bga-binary-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.bgacsr");
        let compressed = CompressedCsrGraph::from_csr(&barabasi_albert(150, 3, 4));
        write_compressed_binary_file(&path, &compressed).unwrap();
        let back = read_compressed_binary_file(&path).unwrap();
        assert_eq!(back, compressed);
        std::fs::remove_file(&path).ok();
    }
}
