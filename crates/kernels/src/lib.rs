//! # bga-kernels
//!
//! The graph kernels of the *Branch-Avoiding Graph Algorithms* (SPAA 2015)
//! reproduction: branch-based and branch-avoiding Shiloach-Vishkin
//! connected components (paper Algorithms 2 and 3), branch-based and
//! branch-avoiding top-down BFS (Algorithms 4 and 5), baselines, extension
//! kernels, and instrumented variants of each that produce the exact
//! per-iteration / per-level counter series the paper's figures plot.
//!
//! ```
//! use bga_graph::generators::{grid_2d, MeshStencil};
//! use bga_kernels::cc::{sv_branch_avoiding, sv_branch_based};
//! use bga_kernels::bfs::{bfs_branch_avoiding, bfs_branch_based};
//!
//! let g = grid_2d(10, 10, MeshStencil::VonNeumann);
//!
//! // Both SV variants compute identical components.
//! assert_eq!(
//!     sv_branch_based(&g).as_slice(),
//!     sv_branch_avoiding(&g).as_slice()
//! );
//!
//! // Both BFS variants compute identical distances.
//! assert_eq!(
//!     bfs_branch_based(&g, 0).distances(),
//!     bfs_branch_avoiding(&g, 0).distances()
//! );
//! ```
//!
//! The instrumented variants return [`stats::RunCounters`] with one
//! [`stats::StepCounters`] per SV sweep / BFS level:
//!
//! ```
//! use bga_graph::generators::{grid_2d, MeshStencil};
//! use bga_kernels::cc::{sv_branch_avoiding_instrumented, sv_branch_based_instrumented};
//!
//! let g = grid_2d(10, 10, MeshStencil::VonNeumann);
//! let based = sv_branch_based_instrumented(&g);
//! let avoiding = sv_branch_avoiding_instrumented(&g);
//! // The branch-based kernel executes roughly twice the branches (Fig. 4).
//! assert!(based.counters.total().branches > avoiding.counters.total().branches);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod kcore;
pub mod select;
pub mod sssp;
pub mod stats;

pub use bfs::{bfs_branch_avoiding, bfs_branch_based, BfsResult};
pub use cc::{sv_branch_avoiding, sv_branch_based, ComponentLabels};
pub use kcore::{kcore_peeling, CoreDecomposition};
pub use sssp::{sssp_delta_stepping, sssp_dijkstra, sssp_unit_delta_stepping, SsspResult};
pub use stats::{RunCounters, StepCounters};
