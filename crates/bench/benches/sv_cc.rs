//! Criterion wall-clock benches for Shiloach-Vishkin connected components:
//! branch-based vs branch-avoiding vs hybrid vs union-find baseline, on the
//! small benchmark suite. This is the real-hardware confirmation of the
//! modelled Figure 3 (absolute numbers depend on the host CPU; the relative
//! ordering is the point).

use bga_graph::suite::{benchmark_suite, SuiteScale};
use bga_kernels::cc::{
    baseline::cc_union_find, sv_branch_avoiding, sv_branch_based, sv_hybrid,
    sv_shortcut_branch_avoiding, sv_shortcut_branch_based, HybridConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sv(c: &mut Criterion) {
    let suite = benchmark_suite(SuiteScale::Small, 42);
    let mut group = c.benchmark_group("sv_connected_components");
    group.sample_size(10);
    for sg in &suite {
        let g = &sg.graph;
        group.bench_with_input(BenchmarkId::new("branch_based", sg.name()), g, |b, g| {
            b.iter(|| sv_branch_based(g))
        });
        group.bench_with_input(BenchmarkId::new("branch_avoiding", sg.name()), g, |b, g| {
            b.iter(|| sv_branch_avoiding(g))
        });
        group.bench_with_input(BenchmarkId::new("hybrid", sg.name()), g, |b, g| {
            b.iter(|| sv_hybrid(g, HybridConfig::default()))
        });
        group.bench_with_input(
            BenchmarkId::new("shortcut_branch_based", sg.name()),
            g,
            |b, g| b.iter(|| sv_shortcut_branch_based(g)),
        );
        group.bench_with_input(
            BenchmarkId::new("shortcut_branch_avoiding", sg.name()),
            g,
            |b, g| b.iter(|| sv_shortcut_branch_avoiding(g)),
        );
        group.bench_with_input(BenchmarkId::new("union_find", sg.name()), g, |b, g| {
            b.iter(|| cc_union_find(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sv);
criterion_main!(benches);
