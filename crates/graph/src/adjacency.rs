//! The adjacency seam every graph representation implements.
//!
//! The parallel traversal engine (`bga-parallel`) and its five kernels do
//! not care *how* neighbour lists are stored — only that each vertex can
//! hand out its sorted neighbours, its degree, and that the chunkers can
//! balance work on degree prefix sums. [`AdjacencySource`] (and its
//! weighted sibling [`WeightedAdjacencySource`]) capture exactly that
//! surface, so the same generic kernel entry points run on the plain
//! [`CsrGraph`] `Vec` layout and on the delta-varint
//! [`crate::compressed::CompressedCsrGraph`] without a line of duplicated
//! traversal code.
//!
//! Two properties matter for bit-identical results across
//! representations:
//!
//! * [`AdjacencySource::neighbor_cursor`] must yield the neighbours in the
//!   same (sorted, duplicate-preserving) order as [`CsrGraph::neighbors`],
//!   so every kernel observes the same edge sequence.
//! * [`AdjacencySource::degree_prefix`] must return the exact CSR offsets
//!   prefix (`prefix[v]` = edge slots owned by vertices `0..v`), so the
//!   edge-balanced chunkers produce the same ranges on either
//!   representation. `CsrGraph` borrows its offsets array for free; the
//!   compressed form materialises the prefix from its rank/select index.

use crate::csr::{CsrGraph, VertexId};
use crate::weighted::{EdgeWeight, WeightedCsrGraph};
use std::borrow::Cow;

/// Memory footprint of one graph representation, reported in run trace
/// headers and by `bga trace report`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphFootprint {
    /// Representation name (`"csr"` or `"compressed"`).
    pub representation: &'static str,
    /// Bytes holding the adjacency payload (the `Vec<u32>` adjacency
    /// array, or the delta-varint byte stream including its padding).
    pub adjacency_bytes: u64,
    /// Bytes holding the offsets structure (the `Vec<usize>` offsets
    /// array, or the rank/select bitmap words plus select samples).
    pub index_bytes: u64,
    /// Bytes the plain `Vec` CSR layout of the same graph occupies —
    /// the baseline the compression ratio is measured against.
    pub csr_bytes: u64,
}

impl GraphFootprint {
    /// Total bytes of this representation (payload + index).
    pub fn total_bytes(&self) -> u64 {
        self.adjacency_bytes + self.index_bytes
    }

    /// Compression ratio versus the plain CSR layout (`> 1` means this
    /// representation is smaller; 1.0 for CSR itself).
    pub fn ratio(&self) -> f64 {
        self.csr_bytes as f64 / (self.total_bytes().max(1)) as f64
    }
}

/// Bytes the plain CSR layout uses for a graph of `n` vertices and `m`
/// directed edge slots: a `u32` per slot plus a `usize` offset per vertex
/// (and the trailing sentinel).
pub(crate) fn csr_layout_bytes(n: usize, m: usize) -> u64 {
    (m * std::mem::size_of::<VertexId>() + (n + 1) * std::mem::size_of::<usize>()) as u64
}

/// An unweighted adjacency structure the traversal engine can run on.
///
/// Implementations must be cheap to query concurrently (`Sync`, interior
/// immutability) and must satisfy the ordering/prefix contracts in the
/// module docs.
pub trait AdjacencySource: Sync {
    /// Iterator over one vertex's neighbours, sorted ascending (duplicates
    /// preserved) — the same sequence [`CsrGraph::neighbors`] yields.
    type Cursor<'a>: Iterator<Item = VertexId> + 'a
    where
        Self: 'a;

    /// Number of vertices `|V|`.
    fn num_vertices(&self) -> usize;

    /// Number of directed edge slots.
    fn num_edge_slots(&self) -> usize;

    /// Whether the graph was constructed as undirected.
    fn is_undirected(&self) -> bool;

    /// Out-degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// Cursor over the neighbours of `v`.
    fn neighbor_cursor(&self, v: VertexId) -> Self::Cursor<'_>;

    /// The degree prefix sums `prefix[v]` = edge slots owned by vertices
    /// `0..v` (length `|V| + 1`): exactly the CSR offsets array. Borrowed
    /// where the representation already stores it, materialised otherwise.
    fn degree_prefix(&self) -> Cow<'_, [usize]>;

    /// Memory footprint of this representation.
    fn footprint(&self) -> GraphFootprint;
}

impl AdjacencySource for CsrGraph {
    type Cursor<'a> = std::iter::Copied<std::slice::Iter<'a, VertexId>>;

    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    #[inline]
    fn num_edge_slots(&self) -> usize {
        CsrGraph::num_edge_slots(self)
    }

    #[inline]
    fn is_undirected(&self) -> bool {
        CsrGraph::is_undirected(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }

    #[inline]
    fn neighbor_cursor(&self, v: VertexId) -> Self::Cursor<'_> {
        self.neighbors(v).iter().copied()
    }

    #[inline]
    fn degree_prefix(&self) -> Cow<'_, [usize]> {
        Cow::Borrowed(self.offsets())
    }

    fn footprint(&self) -> GraphFootprint {
        let csr_bytes = csr_layout_bytes(self.num_vertices(), self.num_edge_slots());
        GraphFootprint {
            representation: "csr",
            adjacency_bytes: (self.num_edge_slots() * std::mem::size_of::<VertexId>()) as u64,
            index_bytes: ((self.num_vertices() + 1) * std::mem::size_of::<usize>()) as u64,
            csr_bytes,
        }
    }
}

/// A weighted adjacency structure the bucket-synchronous engine can run
/// on; the same contracts as [`AdjacencySource`], with cursors yielding
/// `(neighbour, weight)` pairs.
pub trait WeightedAdjacencySource: Sync {
    /// Iterator over one vertex's `(neighbour, weight)` pairs, neighbour
    /// order as in [`AdjacencySource::neighbor_cursor`].
    type WeightedCursor<'a>: Iterator<Item = (VertexId, EdgeWeight)> + 'a
    where
        Self: 'a;

    /// Number of vertices `|V|`.
    fn num_vertices(&self) -> usize;

    /// Number of directed edge slots.
    fn num_edge_slots(&self) -> usize;

    /// Out-degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// Cursor over the `(neighbour, weight)` pairs of `v`.
    fn weighted_neighbor_cursor(&self, v: VertexId) -> Self::WeightedCursor<'_>;

    /// The largest edge weight, or `None` for an edgeless graph.
    fn max_weight(&self) -> Option<EdgeWeight>;

    /// Memory footprint of this representation.
    fn footprint(&self) -> GraphFootprint;
}

/// `(neighbour, weight)` cursor over the parallel slice pair of a
/// [`WeightedCsrGraph`].
pub type WeightedSliceCursor<'a> = std::iter::Zip<
    std::iter::Copied<std::slice::Iter<'a, VertexId>>,
    std::iter::Copied<std::slice::Iter<'a, EdgeWeight>>,
>;

impl WeightedAdjacencySource for WeightedCsrGraph {
    type WeightedCursor<'a> = WeightedSliceCursor<'a>;

    #[inline]
    fn num_vertices(&self) -> usize {
        WeightedCsrGraph::num_vertices(self)
    }

    #[inline]
    fn num_edge_slots(&self) -> usize {
        self.csr().num_edge_slots()
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.csr().degree(v)
    }

    #[inline]
    fn weighted_neighbor_cursor(&self, v: VertexId) -> Self::WeightedCursor<'_> {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.weights_of(v).iter().copied())
    }

    #[inline]
    fn max_weight(&self) -> Option<EdgeWeight> {
        WeightedCsrGraph::max_weight(self)
    }

    fn footprint(&self) -> GraphFootprint {
        let n = self.num_vertices();
        let m = self.csr().num_edge_slots();
        // Weighted CSR baseline: adjacency + parallel weights array.
        let weight_bytes = (m * std::mem::size_of::<EdgeWeight>()) as u64;
        GraphFootprint {
            representation: "csr",
            adjacency_bytes: (m * std::mem::size_of::<VertexId>()) as u64 + weight_bytes,
            index_bytes: ((n + 1) * std::mem::size_of::<usize>()) as u64,
            csr_bytes: csr_layout_bytes(n, m) + weight_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, star_graph};
    use crate::weighted::uniform_weights;

    #[test]
    fn csr_cursor_matches_the_neighbor_slice() {
        let g = barabasi_albert(300, 3, 7);
        for v in g.vertices() {
            let via_cursor: Vec<VertexId> = g.neighbor_cursor(v).collect();
            assert_eq!(via_cursor, g.neighbors(v));
            assert_eq!(AdjacencySource::degree(&g, v), g.neighbors(v).len());
        }
        assert_eq!(g.degree_prefix().as_ref(), g.offsets());
        assert!(matches!(g.degree_prefix(), Cow::Borrowed(_)));
    }

    #[test]
    fn weighted_cursor_matches_neighbors_weighted() {
        let g = uniform_weights(&star_graph(40), 16, 3);
        for v in g.csr().vertices() {
            let via_cursor: Vec<(VertexId, EdgeWeight)> = g.weighted_neighbor_cursor(v).collect();
            let via_slices: Vec<(VertexId, EdgeWeight)> = g.neighbors_weighted(v).collect();
            assert_eq!(via_cursor, via_slices);
        }
        assert_eq!(
            WeightedAdjacencySource::max_weight(&g),
            g.weights().iter().copied().max()
        );
    }

    #[test]
    fn csr_footprint_is_the_baseline() {
        let g = star_graph(100);
        let fp = g.footprint();
        assert_eq!(fp.representation, "csr");
        assert_eq!(fp.adjacency_bytes, (g.num_edge_slots() * 4) as u64);
        assert_eq!(fp.index_bytes, ((g.num_vertices() + 1) * 8) as u64);
        assert_eq!(fp.total_bytes(), fp.csr_bytes);
        assert!((fp.ratio() - 1.0).abs() < 1e-12);
    }
}
