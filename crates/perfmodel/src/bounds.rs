//! Analytical misprediction bounds (paper Sections 4.1 and 5.1, Figure 9).
//!
//! Both bounds assume the 2-bit predictor model of Section 3 with unbounded
//! per-branch state.
//!
//! **Shiloach-Vishkin** (Section 4.1). Per sweep, the inner neighbour loop is
//! a repeated loop executed once per vertex, contributing ≈ 1 miss per
//! vertex (Corollary 1); the outer vertex loop contributes ≈ 1 miss per
//! sweep; the `while` termination test contributes O(1) over the whole run.
//! The data-dependent `if` contributes nothing in the best case, so the
//! lower bound over a run of `d` sweeps is ≈ `d·(|V| + 1) + O(1)`.
//!
//! **BFS** (Section 5.1). The neighbour loop is executed once per vertex
//! found, contributing ≈ |V̂| misses; the `while` loop contributes O(1); the
//! visited test contributes between 0 and ≈ 2·|V̂| (worst case: the predictor
//! oscillates between the weak states). Hence lower bound ≈ |V̂| + O(1) and
//! upper bound ≈ 3·|V̂| + O(1).

/// Small additive constant standing in for the O(1) terms of both bounds
/// (the `while` loop warm-up of Lemmas 1-2).
pub const O1_SLACK: u64 = 3;

/// Lower bound on total branch mispredictions of a Shiloach-Vishkin run with
/// `iterations` sweeps over `num_vertices` vertices.
pub fn sv_misprediction_lower_bound(num_vertices: usize, iterations: usize) -> u64 {
    (iterations as u64) * (num_vertices as u64 + 1) + O1_SLACK
}

/// Lower bound on total branch mispredictions of a top-down BFS that reached
/// `vertices_found` vertices (|V̂| in the paper's notation, including the
/// root).
pub fn bfs_misprediction_lower_bound(vertices_found: usize) -> u64 {
    vertices_found as u64 + O1_SLACK
}

/// Upper bound on total branch mispredictions of a *branch-based* top-down
/// BFS: three misses per vertex found (neighbour-loop exit, plus up to two
/// for the oscillating visited test), plus O(1).
pub fn bfs_misprediction_upper_bound(vertices_found: usize) -> u64 {
    3 * vertices_found as u64 + O1_SLACK
}

/// Ratio of a measured misprediction count to a bound, the quantity the bars
/// of Figure 9 plot (the lower-bound line sits at y = 1). Returns 0 when the
/// bound is 0.
pub fn ratio_to_bound(measured: u64, bound: u64) -> f64 {
    if bound == 0 {
        0.0
    } else {
        measured as f64 / bound as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bga_graph::generators::{barabasi_albert, grid_2d, MeshStencil};
    use bga_graph::transform::relabel_random;
    use bga_kernels::bfs::{bfs_branch_avoiding_instrumented, bfs_branch_based_instrumented};
    use bga_kernels::cc::{sv_branch_avoiding_instrumented, sv_branch_based_instrumented};

    fn test_graphs() -> Vec<bga_graph::CsrGraph> {
        vec![
            relabel_random(&grid_2d(16, 16, MeshStencil::Moore), 1),
            barabasi_albert(600, 3, 2),
        ]
    }

    #[test]
    fn bounds_grow_with_workload() {
        assert!(sv_misprediction_lower_bound(100, 5) > sv_misprediction_lower_bound(100, 4));
        assert!(sv_misprediction_lower_bound(200, 5) > sv_misprediction_lower_bound(100, 5));
        assert!(
            bfs_misprediction_upper_bound(50)
                >= 3 * bfs_misprediction_lower_bound(50) - 2 * O1_SLACK
        );
    }

    #[test]
    fn sv_branch_avoiding_sits_near_the_lower_bound() {
        // Figure 9a: the branch-avoiding algorithm is near the lower bound
        // (ratio ~1) while the branch-based one is well above it.
        for g in test_graphs() {
            let avoiding = sv_branch_avoiding_instrumented(&g);
            let based = sv_branch_based_instrumented(&g);
            let bound = sv_misprediction_lower_bound(g.num_vertices(), avoiding.iterations());
            let ratio_avoiding =
                ratio_to_bound(avoiding.counters.total().branch_mispredictions, bound);
            let ratio_based = ratio_to_bound(based.counters.total().branch_mispredictions, bound);
            assert!(
                (0.5..=1.3).contains(&ratio_avoiding),
                "branch-avoiding ratio {ratio_avoiding} should hug the bound"
            );
            assert!(
                ratio_based > ratio_avoiding,
                "branch-based must sit above branch-avoiding: {ratio_based} vs {ratio_avoiding}"
            );
        }
    }

    #[test]
    fn bfs_mispredictions_respect_both_bounds() {
        // Figure 9b: branch-avoiding near the lower bound; branch-based
        // between the lower bound and 3x.
        for g in test_graphs() {
            let avoiding = bfs_branch_avoiding_instrumented(&g, 0);
            let based = bfs_branch_based_instrumented(&g, 0);
            let found = avoiding.result.reached_count();
            let lower = bfs_misprediction_lower_bound(found);
            let upper = bfs_misprediction_upper_bound(found);

            let m_avoiding = avoiding.counters.total().branch_mispredictions;
            let m_based = based.counters.total().branch_mispredictions;

            let ratio_avoiding = ratio_to_bound(m_avoiding, lower);
            assert!(
                (0.5..=1.3).contains(&ratio_avoiding),
                "branch-avoiding BFS ratio {ratio_avoiding} should hug the bound"
            );
            assert!(m_based >= m_avoiding);
            assert!(
                m_based <= upper,
                "branch-based BFS mispredictions {m_based} exceed the 3x upper bound {upper}"
            );
        }
    }

    #[test]
    fn ratio_handles_zero_bound() {
        assert_eq!(ratio_to_bound(10, 0), 0.0);
        assert_eq!(ratio_to_bound(6, 3), 2.0);
    }
}
