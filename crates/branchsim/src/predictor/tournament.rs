//! Tournament (combining) predictor: a bimodal and a gshare component with a
//! per-site 2-bit chooser that learns which component predicts a given
//! branch better — the structure of the Alpha 21264 predictor and a closer
//! stand-in for the proprietary predictors the paper notes it cannot model
//! exactly.

use super::{BimodalPredictor, GsharePredictor, Outcome, PredictorModel, TwoBitState};
use crate::site::{BranchSite, MAX_BRANCH_SITES};

/// Tournament predictor combining [`BimodalPredictor`] and
/// [`GsharePredictor`] under a 2-bit chooser per branch site.
///
/// Chooser semantics: taken-ish states select the gshare component,
/// not-taken-ish states select the bimodal component. The chooser is only
/// trained when the two components disagree.
#[derive(Clone, Debug)]
pub struct TournamentPredictor {
    bimodal: BimodalPredictor,
    gshare: GsharePredictor,
    chooser: [TwoBitState; MAX_BRANCH_SITES],
}

impl TournamentPredictor {
    /// Creates a tournament predictor whose components use `index_bits`-wide
    /// tables.
    pub fn new(index_bits: u32) -> Self {
        TournamentPredictor {
            bimodal: BimodalPredictor::new(index_bits),
            gshare: GsharePredictor::new(index_bits),
            chooser: [TwoBitState::WeaklyTaken; MAX_BRANCH_SITES],
        }
    }

    #[inline]
    fn chooser_index(site: BranchSite) -> usize {
        site.id() as usize % MAX_BRANCH_SITES
    }

    #[inline]
    fn uses_gshare(&self, site: BranchSite) -> bool {
        self.chooser[Self::chooser_index(site)].prediction() == Outcome::Taken
    }
}

impl PredictorModel for TournamentPredictor {
    fn predict(&self, site: BranchSite) -> Outcome {
        if self.uses_gshare(site) {
            self.gshare.predict(site)
        } else {
            self.bimodal.predict(site)
        }
    }

    fn record(&mut self, site: BranchSite, outcome: Outcome) -> bool {
        let bimodal_prediction = self.bimodal.predict(site);
        let gshare_prediction = self.gshare.predict(site);
        let chosen = if self.uses_gshare(site) {
            gshare_prediction
        } else {
            bimodal_prediction
        };
        let correct = chosen == outcome;

        // Train both components on the actual outcome.
        self.bimodal.record(site, outcome);
        self.gshare.record(site, outcome);

        // Train the chooser only when the components disagreed: move toward
        // the component that was right.
        if bimodal_prediction != gshare_prediction {
            let idx = Self::chooser_index(site);
            let gshare_was_right = gshare_prediction == outcome;
            self.chooser[idx] = self.chooser[idx].next(Outcome::from_bool(gshare_was_right));
        }
        correct
    }

    fn reset(&mut self) {
        self.bimodal.reset();
        self.gshare.reset();
        self.chooser = [TwoBitState::WeaklyTaken; MAX_BRANCH_SITES];
    }

    fn name(&self) -> &'static str {
        "tournament"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP: BranchSite = BranchSite::new(0, "loop");
    const DATA: BranchSite = BranchSite::new(1, "data");

    fn misses_on<F: Fn(usize) -> bool>(
        p: &mut TournamentPredictor,
        site: BranchSite,
        n: usize,
        f: F,
    ) -> u64 {
        (0..n)
            .filter(|&i| !p.record(site, Outcome::from_bool(f(i))))
            .count() as u64
    }

    #[test]
    fn learns_monotone_loops_like_its_components() {
        let mut p = TournamentPredictor::new(10);
        let misses = misses_on(&mut p, LOOP, 1000, |_| true);
        assert!(misses <= 16, "warm-up only, got {misses}");
    }

    #[test]
    fn learns_periodic_patterns_via_the_gshare_component() {
        // Alternating outcomes defeat bimodal but not gshare; the chooser
        // must route this branch to gshare after warm-up.
        let mut p = TournamentPredictor::new(10);
        let mut late_misses = 0;
        for i in 0..400 {
            let outcome = Outcome::from_bool(i % 2 == 0);
            let correct = p.record(DATA, outcome);
            if i >= 200 && !correct {
                late_misses += 1;
            }
        }
        assert_eq!(
            late_misses, 0,
            "tournament should converge on a period-2 pattern"
        );
    }

    #[test]
    fn never_much_worse_than_the_better_component_on_biased_branches() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let outcomes: Vec<bool> = (0..20_000).map(|_| rng.gen::<f64>() < 0.2).collect();

        let mut tournament = TournamentPredictor::new(10);
        let mut bimodal = BimodalPredictor::new(10);
        let t_misses: u64 = outcomes
            .iter()
            .filter(|&&o| !tournament.record(DATA, Outcome::from_bool(o)))
            .count() as u64;
        let b_misses: u64 = outcomes
            .iter()
            .filter(|&&o| !bimodal.record(DATA, Outcome::from_bool(o)))
            .count() as u64;
        assert!(
            (t_misses as f64) <= 1.2 * b_misses as f64 + 100.0,
            "tournament {t_misses} vs bimodal {b_misses}"
        );
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let mut p = TournamentPredictor::new(8);
        let first = p.record(LOOP, Outcome::Taken);
        for _ in 0..50 {
            p.record(LOOP, Outcome::NotTaken);
        }
        p.reset();
        assert_eq!(p.record(LOOP, Outcome::Taken), first);
    }
}
