//! Per-thread counter accounting for instrumented parallel runs.
//!
//! The sequential instrumented kernels route every operation through
//! [`bga_branchsim::ExecMachine`], which is inherently single-threaded. The
//! parallel kernels instead have each worker tally the operations it
//! actually executes into a thread-local [`StepCounters`]; the per-thread
//! tallies for one sweep/level are then merged into a single step and fed
//! into the same [`RunCounters`] series the figures and reports consume.
//! The tallies are accumulated inside pool chunks and returned through
//! [`crate::pool::Execute::run`] in chunk order, so merging is
//! deterministic regardless of which worker ran which chunk. The same
//! merged steps feed the trace layer: each engine phase's
//! [`StepCounters`] map field-for-field into a
//! [`bga_obs::PhaseCounters`] on the emitted `bga-trace-v1` phase event.
//!
//! One honest limitation: real branch *mispredictions* cannot be observed
//! without a predictor simulation, so the merged counters carry the paper's
//! analytical bound for the data-dependent branch (at most two misses per
//! label update / discovery, Sections 4.1 and 5.1) rather than a simulated
//! count, and zero for the branch-avoiding kernels whose remaining loop
//! branches are asymptotically perfectly predicted.

use bga_branchsim::PerfCounters;
use bga_kernels::stats::{RunCounters, StepCounters};

/// Operation tally one worker accumulates over one sweep/level.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadTally {
    /// Edge traversals (inner-loop trips).
    pub edges: u64,
    /// Vertices this worker processed.
    pub vertices: u64,
    /// Label updates (SV) or discoveries (BFS) this worker won.
    pub updates: u64,
    /// Memory loads issued.
    pub loads: u64,
    /// Memory stores issued (atomic RMWs count one load and one store).
    pub stores: u64,
    /// Conditional branches executed (loop bounds plus data-dependent tests).
    pub branches: u64,
    /// Data-dependent conditional branches only (subset of `branches`);
    /// drives the misprediction bound.
    pub data_branches: u64,
    /// Predicated operations (the `min` inside an atomic fetch-min).
    pub conditional_moves: u64,
}

impl ThreadTally {
    /// Converts the tally into a [`StepCounters`] for `step`, applying the
    /// misprediction bound `min(data_branches, 2 * updates)`.
    pub fn into_step(self, step: usize) -> StepCounters {
        let mispredictions = self.data_branches.min(2 * self.updates);
        let instructions =
            self.loads + self.stores + self.branches + self.conditional_moves + self.edges;
        StepCounters {
            step,
            counters: PerfCounters {
                instructions,
                branches: self.branches,
                branch_mispredictions: mispredictions,
                loads: self.loads,
                stores: self.stores,
                conditional_moves: self.conditional_moves,
            },
            edges_traversed: self.edges,
            vertices_processed: self.vertices,
            updates: self.updates,
        }
    }
}

/// Merges the per-thread counters of one sweep/level into a single step:
/// every field is summed, and the step index is forced to `step`.
pub fn merge_thread_steps<I>(step: usize, parts: I) -> StepCounters
where
    I: IntoIterator<Item = StepCounters>,
{
    parts.into_iter().fold(
        StepCounters {
            step,
            ..StepCounters::default()
        },
        |acc, part| StepCounters {
            step,
            counters: acc.counters + part.counters,
            edges_traversed: acc.edges_traversed + part.edges_traversed,
            vertices_processed: acc.vertices_processed + part.vertices_processed,
            updates: acc.updates + part.updates,
        },
    )
}

/// Collects merged steps into the [`RunCounters`] series the existing
/// figures/report machinery consumes.
pub fn collect_run<I>(steps: I) -> RunCounters
where
    I: IntoIterator<Item = StepCounters>,
{
    RunCounters {
        steps: steps.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tally(edges: u64, updates: u64) -> ThreadTally {
        ThreadTally {
            edges,
            vertices: edges / 2,
            updates,
            loads: 2 * edges,
            stores: updates,
            branches: 2 * edges,
            data_branches: edges,
            conditional_moves: 0,
        }
    }

    #[test]
    fn tally_applies_the_misprediction_bound() {
        // Few updates: bound is 2 * updates.
        let step = tally(100, 3).into_step(4);
        assert_eq!(step.step, 4);
        assert_eq!(step.counters.branch_mispredictions, 6);
        // Many updates: bound saturates at the data-branch count.
        let step = tally(10, 9).into_step(0);
        assert_eq!(step.counters.branch_mispredictions, 10);
    }

    #[test]
    fn merge_sums_every_field() {
        let merged = merge_thread_steps(
            2,
            vec![tally(10, 1).into_step(2), tally(30, 5).into_step(2)],
        );
        assert_eq!(merged.step, 2);
        assert_eq!(merged.edges_traversed, 40);
        assert_eq!(merged.vertices_processed, 20);
        assert_eq!(merged.updates, 6);
        assert_eq!(merged.counters.loads, 80);
        assert_eq!(merged.counters.branches, 80);
    }

    #[test]
    fn merge_of_nothing_is_zero() {
        let merged = merge_thread_steps(7, std::iter::empty());
        assert_eq!(merged.step, 7);
        assert_eq!(merged.edges_traversed, 0);
        assert_eq!(merged.counters, PerfCounters::zero());
    }

    #[test]
    fn collected_runs_total_like_sequential_ones() {
        let run = collect_run(vec![tally(10, 1).into_step(0), tally(20, 2).into_step(1)]);
        assert_eq!(run.num_steps(), 2);
        assert_eq!(run.total_edges_traversed(), 30);
        assert_eq!(run.total().loads, 60);
    }
}
