//! Per-iteration / per-level instrumentation results.
//!
//! The paper's Figures 3-8 plot time, branches and mispredictions *per SV
//! iteration* and *per BFS level*. The instrumented kernels return one
//! [`StepCounters`] per iteration/level; these helpers aggregate and ratio
//! them the same way the figures do (each point normalized to the fastest
//! iteration of the branch-based run).

use bga_branchsim::PerfCounters;

/// Counters attributed to one algorithm step (one SV iteration or one BFS
/// level), plus workload metadata needed to normalize per edge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepCounters {
    /// 0-based iteration (SV) or level (BFS) index.
    pub step: usize,
    /// Exact event counts for this step only.
    pub counters: PerfCounters,
    /// Number of edge traversals performed in this step (inner-loop trips).
    pub edges_traversed: u64,
    /// Number of vertices processed (outer-loop trips for SV, frontier size
    /// for BFS).
    pub vertices_processed: u64,
    /// Number of label updates (SV) or newly discovered vertices (BFS).
    pub updates: u64,
}

/// Full result of an instrumented run: the per-step series plus totals.
#[derive(Clone, Debug, Default)]
pub struct RunCounters {
    /// One entry per SV iteration / BFS level, in execution order.
    pub steps: Vec<StepCounters>,
}

impl RunCounters {
    /// Sum of the counters over every step.
    pub fn total(&self) -> PerfCounters {
        self.steps
            .iter()
            .fold(PerfCounters::zero(), |acc, s| acc + s.counters)
    }

    /// Total edge traversals across all steps.
    pub fn total_edges_traversed(&self) -> u64 {
        self.steps.iter().map(|s| s.edges_traversed).sum()
    }

    /// Number of steps (SV iterations / BFS levels).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Extracts one per-step metric as a series, e.g. for plotting.
    pub fn series<F: Fn(&StepCounters) -> f64>(&self, f: F) -> Vec<f64> {
        self.steps.iter().map(f).collect()
    }

    /// The paper's normalization: each step's `metric` divided by the
    /// *minimum* of that metric over the steps of `baseline`. Returns an
    /// empty vector if the baseline minimum is zero or the baseline is
    /// empty.
    pub fn ratio_to_baseline_min<F>(&self, baseline: &RunCounters, metric: F) -> Vec<f64>
    where
        F: Fn(&StepCounters) -> f64,
    {
        let baseline_min = baseline
            .steps
            .iter()
            .map(&metric)
            .fold(f64::INFINITY, f64::min);
        if !baseline_min.is_finite() || baseline_min <= 0.0 {
            return Vec::new();
        }
        self.steps
            .iter()
            .map(|s| metric(s) / baseline_min)
            .collect()
    }
}

/// Overall speedup of `candidate` over `reference` for a given total metric
/// (`reference / candidate`, so values above 1 mean the candidate is
/// better). Returns `None` when the candidate total is zero.
pub fn speedup<F>(reference: &RunCounters, candidate: &RunCounters, metric: F) -> Option<f64>
where
    F: Fn(&PerfCounters) -> f64,
{
    let r = metric(&reference.total());
    let c = metric(&candidate.total());
    if c == 0.0 {
        None
    } else {
        Some(r / c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(step: usize, instructions: u64, mispredictions: u64) -> StepCounters {
        StepCounters {
            step,
            counters: PerfCounters {
                instructions,
                branches: instructions / 2,
                branch_mispredictions: mispredictions,
                loads: instructions / 3,
                stores: instructions / 10,
                conditional_moves: 0,
            },
            edges_traversed: instructions,
            vertices_processed: instructions / 4,
            updates: mispredictions,
        }
    }

    fn run(values: &[(u64, u64)]) -> RunCounters {
        RunCounters {
            steps: values
                .iter()
                .enumerate()
                .map(|(i, &(ins, mis))| step(i, ins, mis))
                .collect(),
        }
    }

    #[test]
    fn totals_aggregate_every_step() {
        let r = run(&[(100, 10), (50, 5), (25, 1)]);
        let t = r.total();
        assert_eq!(t.instructions, 175);
        assert_eq!(t.branch_mispredictions, 16);
        assert_eq!(r.total_edges_traversed(), 175);
        assert_eq!(r.num_steps(), 3);
    }

    #[test]
    fn series_extracts_metric_in_order() {
        let r = run(&[(10, 1), (20, 2), (30, 3)]);
        assert_eq!(
            r.series(|s| s.counters.instructions as f64),
            vec![10.0, 20.0, 30.0]
        );
    }

    #[test]
    fn ratio_normalizes_to_baseline_minimum() {
        let baseline = run(&[(40, 0), (20, 0), (80, 0)]);
        let candidate = run(&[(60, 0), (10, 0)]);
        let ratios = candidate.ratio_to_baseline_min(&baseline, |s| s.counters.instructions as f64);
        assert_eq!(ratios, vec![3.0, 0.5]);
        // Figure 3 style: the baseline normalized to itself has minimum 1.0.
        let self_ratios =
            baseline.ratio_to_baseline_min(&baseline, |s| s.counters.instructions as f64);
        assert_eq!(
            self_ratios.iter().cloned().fold(f64::INFINITY, f64::min),
            1.0
        );
    }

    #[test]
    fn ratio_handles_degenerate_baselines() {
        let empty = RunCounters::default();
        let candidate = run(&[(10, 0)]);
        assert!(candidate
            .ratio_to_baseline_min(&empty, |s| s.counters.instructions as f64)
            .is_empty());
    }

    #[test]
    fn speedup_is_reference_over_candidate() {
        let slow = run(&[(200, 0)]);
        let fast = run(&[(100, 0)]);
        let s = speedup(&slow, &fast, |c| c.instructions as f64).unwrap();
        assert_eq!(s, 2.0);
        assert!(speedup(&slow, &RunCounters::default(), |c| c.instructions as f64).is_none());
    }
}
