//! Plain whitespace-separated edge-list reader/writer, in unweighted
//! (`u v`) and weighted (`u v w`) forms.

use super::{apply_read_faults, IoError};
use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use crate::weighted::{EdgeWeight, WeightedCsrGraph, WeightedGraphBuilder};
use std::fs;
use std::path::Path;

/// Parses an undirected graph from edge-list text: one `u v` pair per line,
/// blank lines and lines starting with `#` or `%` ignored. Extra columns
/// (e.g. edge weights) are tolerated and dropped — use
/// [`read_weighted_edge_list_str`] to keep them.
pub fn read_edge_list_str(text: &str) -> Result<CsrGraph, IoError> {
    let mut builder = GraphBuilder::undirected(0);
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let u = parse_vertex(parts.next(), idx + 1, "missing source vertex")?;
        let v = parse_vertex(parts.next(), idx + 1, "missing target vertex")?;
        // Extra columns (e.g. edge weights) are tolerated and dropped here;
        // the weighted reader surfaces them.
        let _ = parts.next();
        builder.push_edge(u, v);
    }
    Ok(builder.build())
}

/// Parses an undirected *weighted* graph from edge-list text: one
/// `u v [w]` triple per line (`w` defaults to 1 when the column is
/// absent), the same comment rules as [`read_edge_list_str`]. Weights must
/// be positive integers — a zero weight is a parse error, not a silent
/// drop, because the delta-stepping kernels require strictly positive
/// weights. Duplicate edges collapse to their minimum weight (the
/// shortest-path-preserving policy of
/// [`crate::weighted::WeightedGraphBuilder`]).
pub fn read_weighted_edge_list_str(text: &str) -> Result<WeightedCsrGraph, IoError> {
    let mut builder = WeightedGraphBuilder::undirected(0);
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let u = parse_vertex(parts.next(), idx + 1, "missing source vertex")?;
        let v = parse_vertex(parts.next(), idx + 1, "missing target vertex")?;
        let weight = match parts.next() {
            None => 1,
            Some(token) => parse_weight(token, idx + 1)?,
        };
        builder.push_edge(u, v, weight);
    }
    Ok(builder.build())
}

/// Reads a weighted edge-list file from disk.
pub fn read_weighted_edge_list<P: AsRef<Path>>(path: P) -> Result<WeightedCsrGraph, IoError> {
    let text = apply_read_faults(fs::read_to_string(path)?);
    read_weighted_edge_list_str(&text)
}

/// Reads an edge-list file from disk.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<CsrGraph, IoError> {
    let text = apply_read_faults(fs::read_to_string(path)?);
    read_edge_list_str(&text)
}

/// Serializes the graph as edge-list text (each undirected edge once, with
/// `u <= v`), prefixed by a comment describing the sizes.
pub fn write_edge_list_string(graph: &CsrGraph) -> String {
    let mut out = String::with_capacity(graph.num_edges() * 12 + 64);
    out.push_str(&format!(
        "# vertices {} edges {}\n",
        graph.num_vertices(),
        graph.num_edges()
    ));
    for (u, v) in graph.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

/// Writes the edge-list representation to a file.
pub fn write_edge_list<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<(), IoError> {
    fs::write(path, write_edge_list_string(graph))?;
    Ok(())
}

/// Serializes a weighted graph as edge-list text (`u v w` per undirected
/// edge, `u <= v`), prefixed by a comment describing the sizes.
pub fn write_weighted_edge_list_string(graph: &WeightedCsrGraph) -> String {
    let mut out = String::with_capacity(graph.num_edges() * 16 + 64);
    out.push_str(&format!(
        "# vertices {} edges {} weighted\n",
        graph.num_vertices(),
        graph.num_edges()
    ));
    for (u, v, w) in graph.edges_weighted() {
        out.push_str(&format!("{u} {v} {w}\n"));
    }
    out
}

/// Writes the weighted edge-list representation to a file.
pub fn write_weighted_edge_list<P: AsRef<Path>>(
    graph: &WeightedCsrGraph,
    path: P,
) -> Result<(), IoError> {
    fs::write(path, write_weighted_edge_list_string(graph))?;
    Ok(())
}

fn parse_weight(token: &str, line: usize) -> Result<EdgeWeight, IoError> {
    let weight = token.parse::<EdgeWeight>().map_err(|e| IoError::Parse {
        line,
        message: format!("invalid edge weight {token:?}: {e}"),
    })?;
    if weight == 0 {
        return Err(IoError::Parse {
            line,
            message: "edge weight 0 is forbidden (weights must be >= 1)".to_string(),
        });
    }
    Ok(weight)
}

fn parse_vertex(token: Option<&str>, line: usize, missing: &str) -> Result<VertexId, IoError> {
    let token = token.ok_or_else(|| IoError::Parse {
        line,
        message: missing.to_string(),
    })?;
    let id = token.parse::<VertexId>().map_err(|e| IoError::Parse {
        line,
        message: format!("invalid vertex id {token:?}: {e}"),
    })?;
    // u32::MAX doubles as the "unreached" sentinel throughout the kernels
    // (and id + 1 must fit the vertex count), so the last id is reserved.
    if id == VertexId::MAX {
        return Err(IoError::Parse {
            line,
            message: format!("vertex id {id} is reserved (the unreached sentinel)"),
        });
    }
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_list_with_comments() {
        let g = read_edge_list_str("# comment\n% other comment\n0 1\n1 2\n\n2 0\n").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn ignores_extra_columns() {
        let g = read_edge_list_str("0 1 5.0\n1 2 0.25\n").unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn weighted_reader_surfaces_the_third_column() {
        // The unweighted reader drops these weights; the weighted one must
        // keep them — this is the regression test for the parse-and-drop
        // behaviour the weighted CSR replaced.
        let text = "# c\n0 1 5\n1 2 3\n2 3\n";
        let g = read_weighted_edge_list_str(text).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.weight_of_edge(0, 1), Some(5));
        assert_eq!(g.weight_of_edge(1, 0), Some(5));
        assert_eq!(g.weight_of_edge(1, 2), Some(3));
        // A missing weight column defaults to 1.
        assert_eq!(g.weight_of_edge(2, 3), Some(1));
        // The unweighted reader on the same text agrees on structure.
        assert_eq!(read_edge_list_str(text).unwrap(), *g.csr());
    }

    #[test]
    fn weighted_reader_rejects_bad_weights() {
        let err = read_weighted_edge_list_str("0 1 0\n").unwrap_err();
        assert!(err.to_string().contains("forbidden"), "{err}");
        let err = read_weighted_edge_list_str("0 1 -3\n").unwrap_err();
        assert!(err.to_string().contains("invalid edge weight"), "{err}");
        let err = read_weighted_edge_list_str("0 1 2.5\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn weighted_round_trip_preserves_weights() {
        let g = read_weighted_edge_list_str("0 1 5\n1 2 3\n2 3 9\n3 0 1\n").unwrap();
        let text = write_weighted_edge_list_string(&g);
        let back = read_weighted_edge_list_str(&text).unwrap();
        assert_eq!(g, back);
        // And through a file on disk.
        let dir = std::env::temp_dir().join("bga_graph_wio_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.wedges");
        write_weighted_edge_list(&g, &path).unwrap();
        assert_eq!(read_weighted_edge_list(&path).unwrap(), g);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn weighted_duplicate_edges_collapse_to_the_minimum() {
        let g = read_weighted_edge_list_str("0 1 9\n1 0 4\n").unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weight_of_edge(0, 1), Some(4));
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edge_list_str("0 x\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = read_edge_list_str("0 1\n3\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn file_round_trip() {
        let g = read_edge_list_str("0 1\n1 2\n2 3\n3 0\n").unwrap();
        let dir = std::env::temp_dir().join("bga_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.edges");
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_edge_list("/definitely/not/a/real/path.edges").unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
    }
}
