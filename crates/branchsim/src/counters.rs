//! Hardware-performance-counter equivalents.
//!
//! The paper measures retired instructions, branches, branch mispredictions,
//! loads and stores per iteration/level via hardware counters. In this
//! reproduction the kernels run against an instrumented machine
//! ([`crate::machine::ExecMachine`]) that increments these software counters
//! instead; the counts are exact rather than sampled.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A snapshot of the event counters the paper's Figure 10 correlates:
/// instructions (I), branches (B), mispredictions (M), loads (L), stores (S),
/// plus conditional moves (the instruction the branch-avoiding variants rely
/// on) and total time proxy left to the cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Retired instructions (every counted operation contributes).
    pub instructions: u64,
    /// Conditional branch instructions executed.
    pub branches: u64,
    /// Conditional branches whose predicted direction was wrong.
    pub branch_mispredictions: u64,
    /// Memory load operations.
    pub loads: u64,
    /// Memory store operations.
    pub stores: u64,
    /// Conditional-move / conditional-add (predicated) operations.
    pub conditional_moves: u64,
}

impl PerfCounters {
    /// All-zero counters.
    pub const fn zero() -> Self {
        PerfCounters {
            instructions: 0,
            branches: 0,
            branch_mispredictions: 0,
            loads: 0,
            stores: 0,
            conditional_moves: 0,
        }
    }

    /// Misprediction rate = mispredictions / branches (0 when no branches).
    pub fn misprediction_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredictions as f64 / self.branches as f64
        }
    }

    /// Element-wise difference `self - earlier`, saturating at zero. Used to
    /// turn two snapshots into a per-iteration delta.
    pub fn delta_since(&self, earlier: &PerfCounters) -> PerfCounters {
        PerfCounters {
            instructions: self.instructions.saturating_sub(earlier.instructions),
            branches: self.branches.saturating_sub(earlier.branches),
            branch_mispredictions: self
                .branch_mispredictions
                .saturating_sub(earlier.branch_mispredictions),
            loads: self.loads.saturating_sub(earlier.loads),
            stores: self.stores.saturating_sub(earlier.stores),
            conditional_moves: self
                .conditional_moves
                .saturating_sub(earlier.conditional_moves),
        }
    }

    /// Normalizes every counter by a divisor (e.g. edges traversed), yielding
    /// the per-edge quantities Figure 10 plots. Returns zeros when the
    /// divisor is zero.
    pub fn per(&self, divisor: u64) -> NormalizedCounters {
        if divisor == 0 {
            return NormalizedCounters::default();
        }
        let d = divisor as f64;
        NormalizedCounters {
            instructions: self.instructions as f64 / d,
            branches: self.branches as f64 / d,
            branch_mispredictions: self.branch_mispredictions as f64 / d,
            loads: self.loads as f64 / d,
            stores: self.stores as f64 / d,
            conditional_moves: self.conditional_moves as f64 / d,
        }
    }
}

/// Per-edge (or per-anything) floating point view of [`PerfCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NormalizedCounters {
    /// Instructions per unit.
    pub instructions: f64,
    /// Branches per unit.
    pub branches: f64,
    /// Mispredictions per unit.
    pub branch_mispredictions: f64,
    /// Loads per unit.
    pub loads: f64,
    /// Stores per unit.
    pub stores: f64,
    /// Conditional moves per unit.
    pub conditional_moves: f64,
}

impl Add for PerfCounters {
    type Output = PerfCounters;
    fn add(self, rhs: PerfCounters) -> PerfCounters {
        PerfCounters {
            instructions: self.instructions + rhs.instructions,
            branches: self.branches + rhs.branches,
            branch_mispredictions: self.branch_mispredictions + rhs.branch_mispredictions,
            loads: self.loads + rhs.loads,
            stores: self.stores + rhs.stores,
            conditional_moves: self.conditional_moves + rhs.conditional_moves,
        }
    }
}

impl AddAssign for PerfCounters {
    fn add_assign(&mut self, rhs: PerfCounters) {
        *self = *self + rhs;
    }
}

impl Sub for PerfCounters {
    type Output = PerfCounters;
    fn sub(self, rhs: PerfCounters) -> PerfCounters {
        self.delta_since(&rhs)
    }
}

impl fmt::Display for PerfCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "I={} B={} M={} L={} S={} CMOV={}",
            self.instructions,
            self.branches,
            self.branch_mispredictions,
            self.loads,
            self.stores,
            self.conditional_moves
        )
    }
}

/// Sums an iterator of counters.
pub fn total<'a, I: IntoIterator<Item = &'a PerfCounters>>(counters: I) -> PerfCounters {
    counters
        .into_iter()
        .fold(PerfCounters::zero(), |acc, c| acc + *c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfCounters {
        PerfCounters {
            instructions: 100,
            branches: 40,
            branch_mispredictions: 10,
            loads: 30,
            stores: 20,
            conditional_moves: 5,
        }
    }

    #[test]
    fn zero_is_identity_for_add() {
        assert_eq!(sample() + PerfCounters::zero(), sample());
    }

    #[test]
    fn add_and_sub_round_trip() {
        let a = sample();
        let b = PerfCounters {
            instructions: 1,
            branches: 2,
            branch_mispredictions: 3,
            loads: 4,
            stores: 5,
            conditional_moves: 6,
        };
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn delta_saturates() {
        let small = PerfCounters::zero();
        let big = sample();
        assert_eq!(small.delta_since(&big), PerfCounters::zero());
    }

    #[test]
    fn misprediction_rate() {
        assert_eq!(sample().misprediction_rate(), 0.25);
        assert_eq!(PerfCounters::zero().misprediction_rate(), 0.0);
    }

    #[test]
    fn per_divides_every_field() {
        let n = sample().per(10);
        assert_eq!(n.instructions, 10.0);
        assert_eq!(n.branches, 4.0);
        assert_eq!(n.stores, 2.0);
        assert_eq!(sample().per(0), NormalizedCounters::default());
    }

    #[test]
    fn total_sums() {
        let parts = vec![sample(), sample(), PerfCounters::zero()];
        let t = total(&parts);
        assert_eq!(t.instructions, 200);
        assert_eq!(t.branches, 80);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut acc = PerfCounters::zero();
        acc += sample();
        acc += sample();
        assert_eq!(acc.loads, 60);
    }

    #[test]
    fn display_contains_all_fields() {
        let s = sample().to_string();
        for token in ["I=100", "B=40", "M=10", "L=30", "S=20", "CMOV=5"] {
            assert!(s.contains(token), "missing {token} in {s}");
        }
    }
}
