//! Static (history-free) predictors: always taken / always not-taken.
//! These are the degenerate baselines for the predictor ablation.

use super::{Outcome, PredictorModel};
use crate::site::BranchSite;

/// Predicts "taken" for every branch. Loops are predicted almost perfectly
/// (one miss at each exit); data-dependent branches miss whenever they fall
/// through.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysTakenPredictor;

impl AlwaysTakenPredictor {
    /// New always-taken predictor.
    pub fn new() -> Self {
        AlwaysTakenPredictor
    }
}

impl PredictorModel for AlwaysTakenPredictor {
    fn predict(&self, _site: BranchSite) -> Outcome {
        Outcome::Taken
    }
    fn record(&mut self, _site: BranchSite, outcome: Outcome) -> bool {
        outcome.is_taken()
    }
    fn reset(&mut self) {}
    fn name(&self) -> &'static str {
        "always-taken"
    }
}

/// Predicts "not taken" for every branch.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysNotTakenPredictor;

impl AlwaysNotTakenPredictor {
    /// New always-not-taken predictor.
    pub fn new() -> Self {
        AlwaysNotTakenPredictor
    }
}

impl PredictorModel for AlwaysNotTakenPredictor {
    fn predict(&self, _site: BranchSite) -> Outcome {
        Outcome::NotTaken
    }
    fn record(&mut self, _site: BranchSite, outcome: Outcome) -> bool {
        !outcome.is_taken()
    }
    fn reset(&mut self) {}
    fn name(&self) -> &'static str {
        "always-not-taken"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SITE: BranchSite = BranchSite::new(0, "t");

    #[test]
    fn always_taken_only_misses_not_taken_branches() {
        let mut p = AlwaysTakenPredictor::new();
        assert!(p.record(SITE, Outcome::Taken));
        assert!(!p.record(SITE, Outcome::NotTaken));
        assert_eq!(p.predict(SITE), Outcome::Taken);
    }

    #[test]
    fn always_not_taken_mirror_image() {
        let mut p = AlwaysNotTakenPredictor::new();
        assert!(!p.record(SITE, Outcome::Taken));
        assert!(p.record(SITE, Outcome::NotTaken));
        assert_eq!(p.predict(SITE), Outcome::NotTaken);
    }
}
