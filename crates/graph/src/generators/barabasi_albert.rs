//! Barabási–Albert preferential attachment: power-law degree distributions
//! of the kind the paper's collaboration graphs (coAuthorsDBLP,
//! cond-mat-2005) exhibit.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Barabási–Albert graph: starts from a small clique of `m` vertices, then
/// each new vertex attaches to `m` distinct existing vertices chosen with
/// probability proportional to their current degree.
///
/// Panics if `m == 0` or `n < m`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m >= 1, "attachment count m must be at least 1");
    assert!(n >= m, "need at least m vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);

    // `targets` holds one entry per edge endpoint, so sampling uniformly from
    // it is sampling proportionally to degree.
    let mut endpoint_pool: Vec<VertexId> = Vec::with_capacity(2 * n * m);

    // Seed clique on the first m vertices (or a single vertex when m == 1).
    let seed_size = m.max(2).min(n);
    for u in 0..seed_size {
        for v in (u + 1)..seed_size {
            b.push_edge(u as VertexId, v as VertexId);
            endpoint_pool.push(u as VertexId);
            endpoint_pool.push(v as VertexId);
        }
    }

    for v in seed_size..n {
        // Degree-proportional sampling with rejection of duplicates. A small
        // Vec keeps the insertion order deterministic for a given seed.
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
        while chosen.len() < m {
            let target = if endpoint_pool.is_empty() {
                rng.gen_range(0..v) as VertexId
            } else {
                endpoint_pool[rng.gen_range(0..endpoint_pool.len())]
            };
            if !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &t in &chosen {
            b.push_edge(v as VertexId, t);
            endpoint_pool.push(v as VertexId);
            endpoint_pool.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::connected_component_count;

    #[test]
    fn edge_count_matches_formula() {
        let n = 500;
        let m = 3;
        let g = barabasi_albert(n, m, 11);
        let seed_size = m.max(2);
        let expected = seed_size * (seed_size - 1) / 2 + (n - seed_size) * m;
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn graph_is_connected() {
        let g = barabasi_albert(300, 2, 5);
        assert_eq!(connected_component_count(&g), 1);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = barabasi_albert(2000, 2, 42);
        let max = g.max_degree() as f64;
        let avg = g.average_degree();
        // Preferential attachment produces hubs far above the average degree.
        assert!(
            max > 5.0 * avg,
            "expected hub formation: max degree {max}, average {avg}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(barabasi_albert(200, 3, 1), barabasi_albert(200, 3, 1));
        assert_ne!(barabasi_albert(200, 3, 1), barabasi_albert(200, 3, 2));
    }

    #[test]
    fn minimal_sizes() {
        let g = barabasi_albert(2, 1, 0);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        let g = barabasi_albert(1, 1, 0);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_m() {
        barabasi_albert(10, 0, 0);
    }
}
