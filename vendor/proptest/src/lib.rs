//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`strategy::Just`],
//! [`collection::vec`], [`test_runner::Config`] and the `prop_assert*`
//! macros.
//!
//! Semantics: each test function runs `Config::cases` times with values
//! drawn from a deterministic per-case RNG, so failures are reproducible.
//! Unlike real proptest there is no shrinking — a failing case panics with
//! the ordinary assertion message.

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    /// Mirror of `proptest::test_runner::Config` (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic per-case RNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG; the [`crate::proptest!`] macro derives one seed per
        /// case index so every case draws an independent stream.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5DEE_CE66_D0C3_3A5B,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % width) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let width = (end - start) as u64;
                    if width == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + (rng.next_u64() % (width + 1)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            start + rng.next_f64() * (end - start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                let width = (self.size.end - self.size.start) as u64;
                self.size.start + (rng.next_u64() % width) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirror of `proptest::prop_assert!` — panics instead of recording a
/// shrinkable failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Mirror of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::new(
                        case.wrapping_mul(0xA24B_AED4_963E_E407).wrapping_add(0x1234_5678_9ABC_DEF0),
                    );
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                    );
                    $body
                }
            }
        )+
    };
}

/// Mirror of the `proptest!` macro: runs each contained `#[test]` function
/// over `Config::cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_body! { $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

pub mod prelude {
    //! Glob-importable prelude, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Namespaced re-exports (`prop::collection::vec`).
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 2usize..60, x in 0.25f64..=0.75, s in 1u64..9) {
            prop_assert!((2..60).contains(&n));
            prop_assert!((0.25..=0.75).contains(&x));
            prop_assert!((1..9).contains(&s));
        }

        #[test]
        fn flat_map_and_collections_compose((n, items) in (2usize..20).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0..n as u32, 0..40))
        })) {
            prop_assert!(items.len() < 40);
            for item in items {
                prop_assert!((item as usize) < n);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in prop::collection::vec(0u8..=255, 0..10)) {
            prop_assert!(v.len() < 10);
        }
    }
}
