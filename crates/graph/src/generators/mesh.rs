//! Regular 2-D and 3-D mesh generators.
//!
//! The audikw1, ldoor and auto graphs in the paper's Table 2 are finite
//! element / partitioning meshes: locally dense, bounded degree, large
//! diameter. A 3-D grid with a Moore-style stencil is the closest synthetic
//! structure with the same traversal behaviour (many BFS levels, many SV
//! iterations, regular inner loops).

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};

/// Neighbourhood stencil for mesh generators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeshStencil {
    /// Axis-aligned neighbours only (4 in 2-D, 6 in 3-D).
    VonNeumann,
    /// All surrounding cells including diagonals (8 in 2-D, 26 in 3-D);
    /// closer to the connectivity of FEM matrices like audikw1/ldoor.
    Moore,
}

/// 2-D grid of `rows x cols` vertices. Vertex `(r, c)` has id `r * cols + c`.
pub fn grid_2d(rows: usize, cols: usize, stencil: MeshStencil) -> CsrGraph {
    let n = rows * cols;
    let mut b = GraphBuilder::undirected(n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.push_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.push_edge(id(r, c), id(r + 1, c));
            }
            if stencil == MeshStencil::Moore && r + 1 < rows {
                if c + 1 < cols {
                    b.push_edge(id(r, c), id(r + 1, c + 1));
                }
                if c > 0 {
                    b.push_edge(id(r, c), id(r + 1, c - 1));
                }
            }
        }
    }
    b.build()
}

/// 3-D grid of `nx x ny x nz` vertices. Vertex `(x, y, z)` has id
/// `x + nx * (y + ny * z)`.
pub fn grid_3d(nx: usize, ny: usize, nz: usize, stencil: MeshStencil) -> CsrGraph {
    let n = nx * ny * nz;
    let mut b = GraphBuilder::undirected(n);
    let id = |x: usize, y: usize, z: usize| (x + nx * (y + ny * z)) as VertexId;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                match stencil {
                    MeshStencil::VonNeumann => {
                        if x + 1 < nx {
                            b.push_edge(id(x, y, z), id(x + 1, y, z));
                        }
                        if y + 1 < ny {
                            b.push_edge(id(x, y, z), id(x, y + 1, z));
                        }
                        if z + 1 < nz {
                            b.push_edge(id(x, y, z), id(x, y, z + 1));
                        }
                    }
                    MeshStencil::Moore => {
                        // Connect to every neighbour that is lexicographically
                        // "later" so each pair is added exactly once.
                        for dz in -1i64..=1 {
                            for dy in -1i64..=1 {
                                for dx in -1i64..=1 {
                                    // Only add each pair once: keep offsets that are
                                    // lexicographically positive in (dz, dy, dx).
                                    if (dz, dy, dx) <= (0, 0, 0) {
                                        continue;
                                    }
                                    let (xx, yy, zz) =
                                        (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                                    if xx < 0
                                        || yy < 0
                                        || zz < 0
                                        || xx >= nx as i64
                                        || yy >= ny as i64
                                        || zz >= nz as i64
                                    {
                                        continue;
                                    }
                                    b.push_edge(
                                        id(x, y, z),
                                        id(xx as usize, yy as usize, zz as usize),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::connected_component_count;

    #[test]
    fn grid_2d_von_neumann_edge_count() {
        // rows*(cols-1) horizontal + (rows-1)*cols vertical
        let g = grid_2d(4, 5, MeshStencil::VonNeumann);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 4 * 4 + 3 * 5);
        assert_eq!(connected_component_count(&g), 1);
    }

    #[test]
    fn grid_2d_moore_has_diagonals() {
        let g = grid_2d(3, 3, MeshStencil::Moore);
        // centre vertex of a 3x3 Moore grid touches all 8 others
        assert_eq!(g.degree(4), 8);
    }

    #[test]
    fn grid_3d_von_neumann_interior_degree() {
        let g = grid_3d(3, 3, 3, MeshStencil::VonNeumann);
        assert_eq!(g.num_vertices(), 27);
        // centre vertex (1,1,1) -> id 1 + 3*(1 + 3*1) = 13 has degree 6
        assert_eq!(g.degree(13), 6);
        assert_eq!(connected_component_count(&g), 1);
    }

    #[test]
    fn grid_3d_moore_interior_degree() {
        let g = grid_3d(3, 3, 3, MeshStencil::Moore);
        assert_eq!(g.degree(13), 26);
        assert_eq!(connected_component_count(&g), 1);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn degenerate_grids() {
        assert_eq!(grid_2d(0, 5, MeshStencil::VonNeumann).num_vertices(), 0);
        assert_eq!(grid_2d(1, 1, MeshStencil::Moore).num_edges(), 0);
        let line = grid_3d(5, 1, 1, MeshStencil::VonNeumann);
        assert_eq!(line.num_edges(), 4);
    }
}
