//! Corrupt-input corpus for every graph reader.
//!
//! Whatever bytes arrive — truncated downloads, spliced garbage, overflowing
//! numbers, lying headers — the four readers must return a structured
//! [`bga_graph::io::IoError`] or a valid graph. Never a panic, and never an
//! unbounded allocation driven by a hostile header.

use bga_graph::generators::{barabasi_albert, grid_2d, MeshStencil};
use bga_graph::io::{
    read_edge_list, read_edge_list_str, read_metis, read_metis_str, read_weighted_edge_list_str,
    read_weighted_metis_str, write_metis_string, IoError,
};
use proptest::prelude::*;

/// The seed documents the mutations start from: one valid instance of each
/// format (the METIS texts double as edge-list garbage and vice versa, which
/// is itself part of the corpus).
fn seeds() -> Vec<String> {
    vec![
        "# comment\n0 1\n1 2\n2 0\n".to_string(),
        "0 1 5\n1 2 3\n2 3 9\n".to_string(),
        "4 4\n2 3\n1 3 4\n1 2\n2\n".to_string(),
        "3 3 1\n2 4 3 7\n1 4 3 2\n1 7 2 2\n".to_string(),
        write_metis_string(&grid_2d(5, 4, MeshStencil::VonNeumann)),
    ]
}

/// Applies one deterministic corruption to `text`.
fn corrupt(text: &str, kind: u8, pos: usize) -> String {
    let lines: Vec<&str> = text.lines().collect();
    match kind % 8 {
        // Truncate mid-document (short read).
        0 => {
            let mut cut = pos % (text.len() + 1);
            while cut > 0 && !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text[..cut].to_string()
        }
        // Splice a line of lexical garbage.
        1 => {
            let at = pos % (lines.len() + 1);
            let mut out: Vec<&str> = lines.clone();
            out.insert(at, "xyz -1 1e9 \u{fffd}");
            out.join("\n")
        }
        // Splice numbers that overflow 32-bit ids / usize.
        2 => {
            let at = pos % (lines.len() + 1);
            let mut out: Vec<&str> = lines.clone();
            out.insert(at, "99999999999999999999 4294967295");
            out.join("\n")
        }
        // Drop a line (inconsistent with any METIS header).
        3 => {
            let mut out: Vec<&str> = lines.clone();
            if !out.is_empty() {
                out.remove(pos % out.len());
            }
            out.join("\n")
        }
        // Duplicate a line (too many vertex lines).
        4 => {
            let mut out: Vec<&str> = lines.clone();
            if !out.is_empty() {
                let line = out[pos % out.len()];
                out.push(line);
            }
            out.join("\n")
        }
        // Replace the header with a hostile one claiming absurd sizes.
        5 => format!("4294967295 18446744073709551615 001\n{text}"),
        // Sprinkle a reserved-sentinel vertex id.
        6 => format!("{text}\n4294967295 0\n"),
        // Glue two documents together with no separator.
        7 => format!("{text}{text}"),
        _ => unreachable!(),
    }
}

/// Every reader either parses or reports a structured error; a parsed graph
/// must be structurally valid.
fn assert_never_panics(input: &str) {
    if let Ok(g) = read_edge_list_str(input) {
        assert!(
            g.validate().is_ok(),
            "edge-list reader built an invalid graph"
        );
    }
    if let Ok(g) = read_weighted_edge_list_str(input) {
        assert!(g.csr().validate().is_ok());
    }
    if let Ok(g) = read_metis_str(input) {
        assert!(g.validate().is_ok(), "METIS reader built an invalid graph");
    }
    if let Ok(g) = read_weighted_metis_str(input) {
        assert!(g.csr().validate().is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// One corruption applied to any seed never panics any reader.
    #[test]
    fn single_corruptions_never_panic(
        seed_index in 0usize..5,
        kind in 0u8..8,
        pos in 0usize..4096,
    ) {
        let input = corrupt(&seeds()[seed_index], kind, pos);
        assert_never_panics(&input);
    }

    /// Two stacked corruptions (the realistic "truncated *and* garbled"
    /// case) never panic either.
    #[test]
    fn stacked_corruptions_never_panic(
        seed_index in 0usize..5,
        first in 0u8..8,
        second in 0u8..8,
        pos in 0usize..4096,
    ) {
        let once = corrupt(&seeds()[seed_index], first, pos);
        let twice = corrupt(&once, second, pos / 3);
        assert_never_panics(&twice);
    }
}

#[test]
fn truncated_files_report_structured_errors() {
    // A METIS document cut anywhere inside the vertex lines must produce a
    // parse error naming the inconsistency, not a panic.
    let text = write_metis_string(&barabasi_albert(40, 2, 7));
    for cut in [text.len() / 4, text.len() / 2, 3 * text.len() / 4] {
        let mut cut = cut;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        match read_metis_str(&text[..cut]) {
            Err(IoError::Parse { .. }) => {}
            Err(other) => panic!("expected a parse error, got {other}"),
            Ok(_) => panic!("truncated METIS file parsed cleanly at byte {cut}"),
        }
    }
}

#[test]
fn overflowing_ids_are_rejected_not_allocated() {
    // 2^32 overflows VertexId.
    assert!(matches!(
        read_edge_list_str("0 4294967296\n"),
        Err(IoError::Parse { line: 1, .. })
    ));
    // u32::MAX parses but is the reserved unreached sentinel.
    let err = read_edge_list_str("0 4294967295\n").unwrap_err();
    assert!(err.to_string().contains("reserved"), "{err}");
    // A METIS header claiming the whole 32-bit id space is rejected before
    // any allocation happens.
    let err = read_metis_str("4294967295 1\n2\n1\n").unwrap_err();
    assert!(err.to_string().contains("id space"), "{err}");
}

#[test]
fn inconsistent_metis_headers_are_rejected() {
    // More vertex lines than declared.
    assert!(read_metis_str("2 1\n2\n1\n1\n").is_err());
    // Fewer vertex lines than declared.
    assert!(read_metis_str("5 1\n2\n1\n").is_err());
    // Wildly wrong edge count.
    assert!(read_metis_str("3 500\n2\n1\n\n").is_err());
}

#[test]
fn non_utf8_files_are_io_errors_not_panics() {
    let dir = std::env::temp_dir().join("bga_graph_corrupt_io_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("binary.edges");
    std::fs::write(&path, [0x30, 0x20, 0xff, 0xfe, 0x00, 0x31]).unwrap();
    assert!(matches!(read_edge_list(&path), Err(IoError::Io(_))));
    assert!(matches!(read_metis(&path), Err(IoError::Io(_))));
    std::fs::remove_file(path).ok();
}

#[cfg(debug_assertions)]
#[test]
fn short_read_fault_injection_truncates_file_reads() {
    // `BGA_FAULT=io:short-read` makes every file reader see half the file,
    // driving the same truncation errors a real short read would. The env
    // var is process-global, so this test owns it briefly; no other test in
    // this binary reads it.
    let g = barabasi_albert(60, 2, 9);
    let dir = std::env::temp_dir().join("bga_graph_short_read_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("whole.metis");
    std::fs::write(&path, write_metis_string(&g)).unwrap();
    assert_eq!(read_metis(&path).unwrap(), g);
    std::env::set_var("BGA_FAULT", "io:short-read");
    let result = read_metis(&path);
    std::env::remove_var("BGA_FAULT");
    match result {
        Err(IoError::Parse { .. }) => {}
        Err(other) => panic!("expected a parse error from the short read, got {other}"),
        Ok(_) => panic!("short read went unnoticed"),
    }
    std::fs::remove_file(path).ok();
}
